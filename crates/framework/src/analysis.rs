//! # Static mutation-log analysis: footprints, conflicts, certificates
//!
//! The paper's central complaint (§6) is that XML update mechanisms make
//! edits *opaque*: nothing about an update reveals what it will touch
//! until it has touched it. This module makes the effect of a validated
//! [`MutationLog`] analyzable **before** it is applied, in the spirit of
//! FLUX's static update analysis (Cheney, arXiv 0807.1211) and the
//! update/query independence test of Genevès–Layaïda–Quint (arXiv
//! 0811.4324), adapted to the log model of PR 6:
//!
//! 1. **Footprints** — every op is abstracted to the log ids it creates
//!    and uses, the sibling *gaps* it writes (keyed by `(parent,
//!    left-slot)` against the pre-batch document), the text points it
//!    overwrites, the subtree *extents* it deletes or moves (resolved as
//!    contiguous preorder ranges through a [`Topology`] sidecar), and a
//!    conservative relabel *region* (the anchor's parent extent — wide
//!    enough to absorb sibling-renumber ripples of prefix schemes).
//! 2. **Conflict graph** — ops `i < j` are connected by dependency
//!    edges (`j` uses an id `i` creates) and conflict edges carrying a
//!    named taxonomy ([`ConflictKind`]): structural overlap,
//!    write-after-delete, text/text, move-into-deleted, and
//!    ancestor/descendant extent overlap.
//! 3. **Certificates** — from the graph the analyzer derives redundant
//!    no-op text writes, whole create+delete *nil components* that
//!    cancel, a canonical topological reorder, and a partition into
//!    provably independent sub-logs ([`AnalyzedPlan::components`]).
//!
//! Certificates are consumed by [`apply_plan_dyn`] /
//! [`apply_plan_coalesced_dyn`] (the batch optimizer behind
//! `apply_log`) and by [`par_apply_independent`], which fans the
//! independent sub-logs across document shards on the `xupd-exec` pool.
//!
//! ## Soundness, in two layers
//!
//! The **batch layer** is deliberately conservative: it must preserve
//! *labels and evidence counters*, not just document bytes, because the
//! differential suite (`tests/analysis_differential.rs`) compares all of
//! them across the whole scheme roster. Reordering is additionally
//! gated on [`DynScheme::order_independent`]: schemes whose labels
//! encode insertion *history* (Prime's temporal prime counter, the
//! containment family's global interval renumbering) refuse the
//! certificate and run in original order — which is always safe.
//!
//! The **pairwise layer** ([`op_pair_verdict`], [`commutes`],
//! [`conflicts`]) is the precise structural oracle the property tests
//! exercise: `Commutes` promises that applying the two ops as one-op
//! batches in either order yields byte-identical documents *and* the
//! same per-op success pattern; every `Conflicts` verdict is witnessed
//! by the pair itself — its two orders genuinely diverge in bytes or in
//! validity. The pairwise oracle judges *structure only*; it does not by
//! itself license label-preserving reorders (that is the batch layer's
//! job).

use std::collections::{BTreeMap, BTreeSet};

use xupd_encoding::Topology;
use xupd_labelcore::DynScheme;
use xupd_xmldom::{NodeId, NodeKind, TreeError, XmlTree};

use crate::driver::{DriveStats, CHECKPOINT_EVERY};
use crate::mutations::{
    apply_mutation_dyn, validate, LogBindings, LogId, Mutation, MutationLog, NodeRef, Place,
};

// ---------------------------------------------------------------------
// Footprint lattice primitives.
// ---------------------------------------------------------------------

/// How each `XmlTree` structural mutator is modelled in the footprint
/// lattice. Keyed by [`xupd_xmldom::STRUCTURAL_MUTATORS`] — the shared
/// table lint rule R8 is also derived from — so the analyzer's write
/// model and the lint gate cannot drift; `mutator_table_stays_in_sync`
/// below pins the correspondence.
pub const MUTATOR_FOOTPRINTS: &[(&str, &str)] = &[
    ("append_child", "gap write at (parent, last-child slot)"),
    ("prepend_child", "gap write at (parent, start slot)"),
    ("insert_before", "gap write at (parent, predecessor slot)"),
    ("insert_after", "gap write at (parent, anchor slot)"),
    ("detach", "moved-subtree extent (source half of MoveSubtree)"),
    ("remove_subtree", "deleted-subtree extent"),
];

/// A contiguous preorder range `[start, end)` of pre-batch rows — the
/// resolved form of a subtree in the [`Topology`] sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Extent {
    /// First preorder row of the subtree (the subtree root).
    pub start: u32,
    /// One past the last preorder row of the subtree.
    pub end: u32,
}

impl Extent {
    /// Does the range cover preorder row `p`?
    pub fn contains(&self, p: u32) -> bool {
        self.start <= p && p < self.end
    }

    /// Do the two ranges share any row? Subtree extents are laminar, so
    /// overlap implies one contains the other.
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// The left boundary of a sibling gap in the pre-batch document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GapSlot {
    /// The gap before the parent's first child.
    Start,
    /// The gap immediately after the child at this preorder row.
    AfterNode(u32),
    /// The slot currently occupied by the child at this row: a
    /// `Replace` writes *in place*, so it collides with neither of the
    /// insertion gaps flanking its target. (Inserts that anchor on the
    /// replaced node itself are caught earlier as write-after-delete.)
    Own(u32),
}

/// A structural write target: one sibling gap, keyed by the parent's
/// preorder row and the left slot. Two ops that realize the same key
/// write the *same* child-list position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GapKey {
    /// Preorder row of the parent whose child list is written.
    pub parent: u32,
    /// Left boundary of the written gap.
    pub left: GapSlot,
}

/// A text-write point: either a pre-batch text node (by preorder row)
/// or a node the batch itself creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PointRef {
    /// Pre-existing text node, by preorder row.
    Pre(u32),
    /// Batch-created node, by log id.
    New(u32),
}

/// The read/write footprint of one mutation, fully resolved against the
/// pre-batch document.
#[derive(Debug, Clone, Default)]
pub struct OpFootprint {
    /// Log ids this op binds.
    pub creates: Vec<LogId>,
    /// Log ids of earlier ops this op references.
    pub uses: Vec<LogId>,
    /// Sibling gaps written (creates, moves, replaces).
    pub gap_writes: Vec<GapKey>,
    /// Text points overwritten.
    pub text_writes: Vec<PointRef>,
    /// Pre-batch rows read as anchors or targets.
    pub anchor_reads: Vec<u32>,
    /// Subtree extents this op deletes (Delete, Replace).
    pub deleted_extents: Vec<Extent>,
    /// Subtree extents this op detaches and re-attaches (MoveSubtree).
    pub moved_extents: Vec<Extent>,
    /// Conservative relabel regions: the anchor-parent extents inside
    /// which every structural ripple of this op (sibling renumbering
    /// included) is contained. New-anchored ops inherit their host
    /// creator's regions so nothing escapes the graph.
    pub regions: Vec<Extent>,
}

// ---------------------------------------------------------------------
// Conflict taxonomy and graph.
// ---------------------------------------------------------------------

/// Why two ops cannot be freely reordered or separated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConflictKind {
    /// Both ops write the same sibling gap or overlapping relabel
    /// regions under the same parent neighbourhood.
    StructuralOverlap,
    /// One op reads or writes a node the other op's delete consumes.
    WriteAfterDelete,
    /// Both ops overwrite the same text point.
    TextText,
    /// A move's destination lands inside a subtree the other op
    /// deletes.
    MoveIntoDeleted,
    /// Deleted/moved subtree extents overlap (ancestor/descendant or
    /// equal), or such an extent overlaps the other op's relabel
    /// region.
    ExtentOverlap,
}

impl ConflictKind {
    /// Stable display name used in reports and benches.
    pub fn name(&self) -> &'static str {
        match self {
            ConflictKind::StructuralOverlap => "structural-overlap",
            ConflictKind::WriteAfterDelete => "write-after-delete",
            ConflictKind::TextText => "text-text",
            ConflictKind::MoveIntoDeleted => "move-into-deleted",
            ConflictKind::ExtentOverlap => "extent-overlap",
        }
    }
}

/// Why edge `from → to` constrains the pair's relative order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `to` references a log id `from` creates.
    Dependency,
    /// The footprints collide; the taxonomy names how.
    Conflict(ConflictKind),
}

/// One ordered edge of the dependency/conflict graph. `from < to`
/// always holds: edges point forward in original log order, so the
/// graph is acyclic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Earlier op (original index).
    pub from: usize,
    /// Later op (original index).
    pub to: usize,
    /// What couples the pair.
    pub kind: EdgeKind,
}

// ---------------------------------------------------------------------
// The analyzed plan: footprints + graph + certificates.
// ---------------------------------------------------------------------

/// The analyzer's output over one validated log: per-op footprints, the
/// dependency/conflict graph, and the derived certificates.
#[derive(Debug, Clone)]
pub struct AnalyzedPlan {
    /// Number of ops the plan covers (must match the log at apply
    /// time).
    len: usize,
    /// Per-op footprints, in log order.
    pub footprints: Vec<OpFootprint>,
    /// Dependency/conflict edges, `from < to`.
    pub edges: Vec<Edge>,
    /// Partition of `0..len` into provably independent components:
    /// no edge crosses components. Components are ordered by smallest
    /// member; members are in original order.
    pub components: Vec<Vec<usize>>,
    /// A canonical topological order of the graph: structure-building
    /// ops first (creates, then moves, replaces, deletes, text), ties
    /// broken by region start then original index. Respects every
    /// edge.
    pub canonical: Vec<usize>,
    /// Ops that are provably no-ops on every observable (a `SetText`
    /// writing the value the pre-batch node already holds, outside any
    /// deleted extent's shadow or not — either way droppable).
    pub redundant: Vec<usize>,
    /// Indices into `components` whose net effect on the document is
    /// nil: every created node is deleted again inside the component,
    /// and no pre-existing node is written, moved, or deleted.
    /// Cancelling them is a coalescing certificate — valid for
    /// document bytes and labels, though work counters shrink. The
    /// optimizer only consumes it for schemes claiming both
    /// [`order_independent`](DynScheme::order_independent) and
    /// [`cancellation_neutral`](DynScheme::cancellation_neutral):
    /// schemes whose insert path rewrites neighbour labels (Sector's
    /// interval respacing, DeweyID/DLN sibling renumbering) make a
    /// cancelled create+delete observable on surviving nodes.
    pub nil_components: Vec<usize>,
}

impl AnalyzedPlan {
    /// Number of ops covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the empty plan.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The conflict edges only (dependencies filtered out).
    pub fn conflict_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Conflict(_)))
    }

    /// Are ops `i` and `j` provably independent (no graph path couples
    /// them — they live in different components)?
    pub fn is_independent(&self, i: usize, j: usize) -> bool {
        self.component_of(i) != self.component_of(j)
    }

    fn component_of(&self, i: usize) -> usize {
        for (c, members) in self.components.iter().enumerate() {
            if members.binary_search(&i).is_ok() {
                return c;
            }
        }
        usize::MAX
    }

    /// The execution order the optimizer is certified to use. With
    /// `reorder` (granted when the session's scheme is
    /// [`order_independent`](DynScheme::order_independent)) the
    /// canonical topological order is used; otherwise original order.
    /// Redundant no-op writes are dropped in both cases; nil
    /// components are dropped only when `cancel` is also granted.
    pub fn execution_order(&self, reorder: bool, cancel: bool) -> Vec<usize> {
        let dropped: BTreeSet<usize> = self
            .redundant
            .iter()
            .copied()
            .chain(if cancel {
                self.nil_components
                    .iter()
                    .flat_map(|&c| self.components[c].iter().copied())
                    .collect::<Vec<_>>()
            } else {
                Vec::new()
            })
            .collect();
        let base: Vec<usize> = if reorder {
            self.canonical.clone()
        } else {
            (0..self.len).collect()
        };
        base.into_iter().filter(|i| !dropped.contains(i)).collect()
    }

    /// Original-order op indices concatenated component by component —
    /// another certified sequential order for order-independent
    /// schemes, and the order [`par_apply_independent`] fans out.
    pub fn component_major_order(&self) -> Vec<usize> {
        self.components.iter().flatten().copied().collect()
    }

    /// Split `log` into one sub-log per component, preserving original
    /// op order inside each. Log ids are untouched: dependency edges
    /// guarantee a component is closed under id references.
    pub fn independent_sublogs(&self, log: &MutationLog) -> Result<Vec<MutationLog>, TreeError> {
        if log.len() != self.len {
            return Err(TreeError::Invariant(
                "analyzed plan does not cover this log".to_string(),
            ));
        }
        let all: Vec<&Mutation> = log.iter().collect();
        Ok(self
            .components
            .iter()
            .map(|members| {
                MutationLog::from(
                    members
                        .iter()
                        .map(|&i| all[i].clone())
                        .collect::<Vec<Mutation>>(),
                )
            })
            .collect())
    }
}

// ---------------------------------------------------------------------
// Document index: preorder rows + Topology sidecar.
// ---------------------------------------------------------------------

/// Preorder view of the pre-batch document: the [`Topology`] sidecar
/// plus an arena-id → preorder-row map.
struct DocIndex {
    top: Topology,
    /// Arena index → preorder row; `u32::MAX` marks dead slots.
    row_of: Vec<u32>,
}

impl DocIndex {
    fn build(tree: &XmlTree) -> Result<DocIndex, TreeError> {
        let order = tree.ids_in_doc_order();
        let mut row_of = vec![u32::MAX; tree.id_bound()];
        for (row, n) in order.iter().enumerate() {
            row_of[n.index()] = row as u32;
        }
        let mut parents: Vec<Option<usize>> = Vec::with_capacity(order.len());
        for &n in &order {
            parents.push(match tree.parent(n) {
                Some(p) => {
                    let pr = row_of[p.index()];
                    if pr == u32::MAX {
                        return Err(TreeError::DanglingNodeId(p));
                    }
                    Some(pr as usize)
                }
                None => None,
            });
        }
        let top = Topology::from_parents(&parents)?;
        Ok(DocIndex { top, row_of })
    }

    fn row(&self, n: NodeId) -> Result<u32, TreeError> {
        match self.row_of.get(n.index()) {
            Some(&r) if r != u32::MAX => Ok(r),
            _ => Err(TreeError::DanglingNodeId(n)),
        }
    }

    fn extent(&self, row: u32) -> Extent {
        Extent {
            start: row,
            end: self.top.extent(row as usize) as u32,
        }
    }
}

/// Shadow parentage of a batch-created node: under a pre-batch row or
/// under another created node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ParentKey {
    Pre(u32),
    New(u32),
}

/// Scratch state threaded through footprint extraction.
struct FootprintBuilder<'t> {
    tree: &'t XmlTree,
    idx: DocIndex,
    /// Final shadow parent of every created id (creates, then moves).
    parent_of_new: BTreeMap<u32, ParentKey>,
    /// Regions inherited by ids created under batch-made hosts.
    regions_of_new: BTreeMap<u32, Vec<Extent>>,
    /// Ids directly consumed by Delete/Replace.
    dead_new: BTreeSet<u32>,
}

impl<'t> FootprintBuilder<'t> {
    fn new(tree: &'t XmlTree) -> Result<FootprintBuilder<'t>, TreeError> {
        Ok(FootprintBuilder {
            tree,
            idx: DocIndex::build(tree)?,
            parent_of_new: BTreeMap::new(),
            regions_of_new: BTreeMap::new(),
            dead_new: BTreeSet::new(),
        })
    }

    /// Record a pre-batch node read (anchor or target).
    fn read(&self, fp: &mut OpFootprint, n: NodeId) -> Result<u32, TreeError> {
        let row = self.idx.row(n)?;
        fp.anchor_reads.push(row);
        Ok(row)
    }

    /// The parent-extent region around `row`'s parent (or the node's
    /// own extent when it is the parent).
    fn parent_region_of(&self, parent_row: u32) -> Extent {
        self.idx.extent(parent_row)
    }

    /// Resolve `place` into gap/region/read facts on `fp`; returns the
    /// shadow parent the landed node acquires.
    fn place_footprint(&self, fp: &mut OpFootprint, place: Place) -> Result<ParentKey, TreeError> {
        match place {
            Place::FirstChildOf(r) | Place::LastChildOf(r) => match r {
                NodeRef::Node(p) => {
                    let prow = self.read(fp, p)?;
                    let left = if matches!(place, Place::FirstChildOf(_)) {
                        GapSlot::Start
                    } else {
                        match self.tree.last_child(p) {
                            Some(lc) => GapSlot::AfterNode(self.idx.row(lc)?),
                            None => GapSlot::Start,
                        }
                    };
                    fp.gap_writes.push(GapKey { parent: prow, left });
                    fp.regions.push(self.parent_region_of(prow));
                    Ok(ParentKey::Pre(prow))
                }
                NodeRef::New(l) => {
                    fp.uses.push(l);
                    self.inherit_regions(fp, l);
                    Ok(ParentKey::New(l.0))
                }
            },
            Place::Before(r) | Place::After(r) => match r {
                NodeRef::Node(s) => {
                    let srow = self.read(fp, s)?;
                    let parent = self
                        .tree
                        .parent(s)
                        .ok_or(TreeError::NoParent(s))?;
                    let prow = self.idx.row(parent)?;
                    let left = if matches!(place, Place::After(_)) {
                        GapSlot::AfterNode(srow)
                    } else {
                        match self.tree.prev_sibling(s) {
                            Some(ps) => GapSlot::AfterNode(self.idx.row(ps)?),
                            None => GapSlot::Start,
                        }
                    };
                    fp.gap_writes.push(GapKey { parent: prow, left });
                    fp.regions.push(self.parent_region_of(prow));
                    Ok(ParentKey::Pre(prow))
                }
                NodeRef::New(l) => {
                    fp.uses.push(l);
                    self.inherit_regions(fp, l);
                    match self.parent_of_new.get(&l.0) {
                        Some(&pk) => Ok(pk),
                        None => Err(TreeError::Invariant(format!(
                            "log id #{} has no recorded parent",
                            l.0
                        ))),
                    }
                }
            },
        }
    }

    fn inherit_regions(&self, fp: &mut OpFootprint, l: LogId) {
        if let Some(rs) = self.regions_of_new.get(&l.0) {
            fp.regions.extend(rs.iter().copied());
        }
    }

    /// Footprint one mutation, updating shadow parentage as the scan
    /// walks the log in order.
    fn footprint(&mut self, m: &Mutation) -> Result<OpFootprint, TreeError> {
        let mut fp = OpFootprint::default();
        match m {
            Mutation::CreateElement { id, place, .. } | Mutation::CreateNode { id, place, .. } => {
                let pk = self.place_footprint(&mut fp, *place)?;
                fp.creates.push(*id);
                self.parent_of_new.insert(id.0, pk);
                self.regions_of_new.insert(id.0, fp.regions.clone());
            }
            Mutation::SetText { target, .. } => match target {
                NodeRef::Node(t) => {
                    let row = self.read(&mut fp, *t)?;
                    fp.text_writes.push(PointRef::Pre(row));
                }
                NodeRef::New(l) => {
                    fp.uses.push(*l);
                    self.inherit_regions(&mut fp, *l);
                    fp.text_writes.push(PointRef::New(l.0));
                }
            },
            Mutation::Replace { target, id, .. } => {
                let pk = match target {
                    NodeRef::Node(t) => {
                        let trow = self.read(&mut fp, *t)?;
                        fp.deleted_extents.push(self.idx.extent(trow));
                        let parent = self.tree.parent(*t).ok_or(TreeError::RootImmutable)?;
                        let prow = self.idx.row(parent)?;
                        fp.gap_writes.push(GapKey {
                            parent: prow,
                            left: GapSlot::Own(trow),
                        });
                        fp.regions.push(self.parent_region_of(prow));
                        ParentKey::Pre(prow)
                    }
                    NodeRef::New(l) => {
                        fp.uses.push(*l);
                        self.inherit_regions(&mut fp, *l);
                        self.dead_new.insert(l.0);
                        match self.parent_of_new.get(&l.0) {
                            Some(&pk) => pk,
                            None => {
                                return Err(TreeError::Invariant(format!(
                                    "log id #{} has no recorded parent",
                                    l.0
                                )))
                            }
                        }
                    }
                };
                fp.creates.push(*id);
                self.parent_of_new.insert(id.0, pk);
                self.regions_of_new.insert(id.0, fp.regions.clone());
            }
            Mutation::Delete { target } => match target {
                NodeRef::Node(t) => {
                    let trow = self.read(&mut fp, *t)?;
                    fp.deleted_extents.push(self.idx.extent(trow));
                    if let Some(parent) = self.tree.parent(*t) {
                        let prow = self.idx.row(parent)?;
                        fp.regions.push(self.parent_region_of(prow));
                    }
                }
                NodeRef::New(l) => {
                    fp.uses.push(*l);
                    self.inherit_regions(&mut fp, *l);
                    self.dead_new.insert(l.0);
                }
            },
            Mutation::AppendChildren { parent, ids, .. } => {
                let pk = match parent {
                    NodeRef::Node(p) => {
                        let prow = self.read(&mut fp, *p)?;
                        let left = match self.tree.last_child(*p) {
                            Some(lc) => GapSlot::AfterNode(self.idx.row(lc)?),
                            None => GapSlot::Start,
                        };
                        fp.gap_writes.push(GapKey { parent: prow, left });
                        fp.regions.push(self.parent_region_of(prow));
                        ParentKey::Pre(prow)
                    }
                    NodeRef::New(l) => {
                        fp.uses.push(*l);
                        self.inherit_regions(&mut fp, *l);
                        ParentKey::New(l.0)
                    }
                };
                for id in ids {
                    fp.creates.push(*id);
                    self.parent_of_new.insert(id.0, pk);
                    self.regions_of_new.insert(id.0, fp.regions.clone());
                }
            }
            Mutation::MoveSubtree { target, place } => {
                let pk = self.place_footprint(&mut fp, *place)?;
                match target {
                    NodeRef::Node(t) => {
                        let trow = self.read(&mut fp, *t)?;
                        fp.moved_extents.push(self.idx.extent(trow));
                        if let Some(parent) = self.tree.parent(*t) {
                            let prow = self.idx.row(parent)?;
                            fp.regions.push(self.parent_region_of(prow));
                        }
                    }
                    NodeRef::New(l) => {
                        fp.uses.push(*l);
                        self.inherit_regions(&mut fp, *l);
                        self.parent_of_new.insert(l.0, pk);
                    }
                }
            }
        }
        Ok(fp)
    }

    /// Is created id `l` provably gone by batch end (it, or a shadow
    /// ancestor among created nodes, is directly consumed)?
    fn created_id_dies(&self, l: u32) -> bool {
        let mut seen = BTreeSet::new();
        let mut cur = l;
        loop {
            if self.dead_new.contains(&cur) {
                return true;
            }
            if !seen.insert(cur) {
                return false;
            }
            match self.parent_of_new.get(&cur) {
                Some(ParentKey::New(p)) => cur = *p,
                _ => return false,
            }
        }
    }
}

// ---------------------------------------------------------------------
// The analysis pass.
// ---------------------------------------------------------------------

/// Every pre-batch row an op's footprint *references* (anchors, targets,
/// text points, gap parents). Allocation-free: `classify` runs once per
/// potentially coupled pair, so per-call Vecs would dominate the scan.
fn referenced_rows(fp: &OpFootprint) -> impl Iterator<Item = u32> + '_ {
    fp.anchor_reads
        .iter()
        .copied()
        .chain(fp.gap_writes.iter().map(|g| g.parent))
        .chain(fp.text_writes.iter().filter_map(|t| match t {
            PointRef::Pre(r) => Some(*r),
            PointRef::New(_) => None,
        }))
}

/// Conservative per-op hulls for the pair scan: the smallest row
/// interval covering every pre-batch row the footprint mentions
/// (anchors, gap parents, text points, deleted/moved extents, relabel
/// regions) and the smallest log-id interval covering creates ∪ uses.
///
/// Every [`classify`] edge needs either two footprints that mention a
/// common pre-batch row neighbourhood (all five conflict kinds compare
/// rows drawn from the sets above) or a shared log id (dependencies,
/// and text/text on a batch-created point — `SetText` on a `New` ref
/// records the id in `uses`). Disjoint hulls on *both* axes therefore
/// prove the pair edge-free, and the O(k²) scan can skip `classify`
/// entirely — turning the common case (localized batches with disjoint
/// footprints) into a cheap interval test per pair.
#[derive(Clone, Copy)]
struct PairBounds {
    /// Row hull `[row_lo, row_hi)`; empty when `row_lo >= row_hi`.
    row_lo: u32,
    row_hi: u32,
    /// Log-id hull `[id_lo, id_hi]`; empty when `id_lo > id_hi`.
    id_lo: u32,
    id_hi: u32,
}

impl PairBounds {
    fn of(fp: &OpFootprint) -> PairBounds {
        let mut b = PairBounds {
            row_lo: u32::MAX,
            row_hi: 0,
            id_lo: u32::MAX,
            id_hi: 0,
        };
        let mut row = |r: u32| {
            b.row_lo = b.row_lo.min(r);
            b.row_hi = b.row_hi.max(r.saturating_add(1));
        };
        for &r in &fp.anchor_reads {
            row(r);
        }
        for g in &fp.gap_writes {
            row(g.parent);
        }
        for t in &fp.text_writes {
            if let PointRef::Pre(r) = t {
                row(*r);
            }
        }
        for e in fp
            .deleted_extents
            .iter()
            .chain(fp.moved_extents.iter())
            .chain(fp.regions.iter())
        {
            if e.start < e.end {
                b.row_lo = b.row_lo.min(e.start);
                b.row_hi = b.row_hi.max(e.end);
            }
        }
        for l in fp.creates.iter().chain(fp.uses.iter()) {
            b.id_lo = b.id_lo.min(l.0);
            b.id_hi = b.id_hi.max(l.0);
        }
        b
    }

    /// Can ops with these hulls possibly produce an edge? False only
    /// when both the row hulls and the id hulls are provably disjoint.
    fn may_conflict(&self, other: &PairBounds) -> bool {
        let rows = self.row_lo < other.row_hi && other.row_lo < self.row_hi;
        let ids = self.id_lo <= other.id_hi && other.id_lo <= self.id_hi;
        rows || ids
    }
}

/// Classify the coupling between ops `i < j`, if any. Precedence:
/// dependency, text/text, move-into-deleted, write-after-delete,
/// extent overlap, structural overlap.
fn classify(a: &OpFootprint, b: &OpFootprint, b_is_move: bool, a_is_move: bool) -> Option<EdgeKind> {
    // Dependency: b uses an id a creates (forward refs only).
    if b.uses.iter().any(|u| a.creates.contains(u)) {
        return Some(EdgeKind::Dependency);
    }
    // Text/text: same point written twice.
    if a.text_writes
        .iter()
        .any(|t| b.text_writes.contains(t))
    {
        return Some(EdgeKind::Conflict(ConflictKind::TextText));
    }
    // Move-into-deleted: a move's destination gap parent sits inside
    // the other op's deleted extent.
    let move_into = |mv: &OpFootprint, del: &OpFootprint| {
        mv.gap_writes
            .iter()
            .any(|g| del.deleted_extents.iter().any(|e| e.contains(g.parent)))
    };
    if (b_is_move && move_into(b, a)) || (a_is_move && move_into(a, b)) {
        return Some(EdgeKind::Conflict(ConflictKind::MoveIntoDeleted));
    }
    // Write-after-delete: one op references a row the other deletes.
    let touches_deleted = |x: &OpFootprint, del: &OpFootprint| {
        referenced_rows(x).any(|r| del.deleted_extents.iter().any(|e| e.contains(r)))
    };
    if touches_deleted(a, b) || touches_deleted(b, a) {
        return Some(EdgeKind::Conflict(ConflictKind::WriteAfterDelete));
    }
    // Extent overlap: deleted/moved extents collide with each other or
    // with the other op's relabel regions.
    fn extents(x: &OpFootprint) -> impl Iterator<Item = &Extent> + '_ {
        x.deleted_extents.iter().chain(x.moved_extents.iter())
    }
    if extents(a).any(|x| extents(b).any(|y| x.overlaps(y)))
        || extents(a).any(|x| b.regions.iter().any(|y| x.overlaps(y)))
        || extents(b).any(|x| a.regions.iter().any(|y| x.overlaps(y)))
    {
        return Some(EdgeKind::Conflict(ConflictKind::ExtentOverlap));
    }
    // Structural overlap: same gap key, or overlapping relabel
    // regions.
    if a.gap_writes.iter().any(|g| b.gap_writes.contains(g))
        || a.regions
            .iter()
            .any(|x| b.regions.iter().any(|y| x.overlaps(y)))
    {
        return Some(EdgeKind::Conflict(ConflictKind::StructuralOverlap));
    }
    None
}

fn class_rank(m: &Mutation) -> u8 {
    match m {
        Mutation::CreateElement { .. }
        | Mutation::CreateNode { .. }
        | Mutation::AppendChildren { .. } => 0,
        Mutation::MoveSubtree { .. } => 1,
        Mutation::Replace { .. } => 2,
        Mutation::Delete { .. } => 3,
        Mutation::SetText { .. } => 4,
    }
}

/// Minimal-key Kahn topological sort: among ready ops, emit the one
/// with the smallest (class rank, region start, original index) key —
/// a *canonical* order that genuinely regroups work (creates first,
/// region-major) instead of echoing the input order.
fn canonical_order(ops: &[&Mutation], fps: &[OpFootprint], edges: &[Edge]) -> Vec<usize> {
    let n = ops.len();
    let mut indegree = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        indegree[e.to] += 1;
        succ[e.from].push(e.to);
    }
    let key = |i: usize| {
        let start = fps[i]
            .regions
            .iter()
            .map(|r| r.start)
            .min()
            .unwrap_or(u32::MAX);
        (class_rank(ops[i]), start, i)
    };
    let mut ready: BTreeSet<(u8, u32, usize)> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(key)
        .collect();
    let mut out = Vec::with_capacity(n);
    while let Some(&k) = ready.iter().next() {
        ready.remove(&k);
        let i = k.2;
        out.push(i);
        for &j in &succ[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.insert(key(j));
            }
        }
    }
    out
}

/// Union-find over op indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, i: usize) -> usize {
        let mut r = i;
        while self.parent[r] != r {
            r = self.parent[r];
        }
        let mut cur = i;
        while self.parent[cur] != r {
            let next = self.parent[cur];
            self.parent[cur] = r;
            cur = next;
        }
        r
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Run the full static analysis over a log: validate it, compute
/// footprints, build the dependency/conflict graph, and derive every
/// certificate. Pure — the tree is only read.
pub fn analyze(log: &MutationLog, tree: &XmlTree) -> Result<AnalyzedPlan, TreeError> {
    validate(log, tree)?;
    let n = log.len();
    let ops: Vec<&Mutation> = log.iter().collect();

    let mut builder = FootprintBuilder::new(tree)?;
    let mut footprints = Vec::with_capacity(n);
    for m in &ops {
        footprints.push(builder.footprint(m)?);
    }

    // Graph: every pair, forward edges only. The hull prefilter keeps
    // the scan quadratic only in *potentially coupled* pairs — for
    // disjoint-footprint batches each pair costs two interval tests.
    let bounds: Vec<PairBounds> = footprints.iter().map(PairBounds::of).collect();
    let is_move: Vec<bool> = ops
        .iter()
        .map(|m| matches!(m, Mutation::MoveSubtree { .. }))
        .collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if !bounds[i].may_conflict(&bounds[j]) {
                continue;
            }
            if let Some(kind) = classify(&footprints[i], &footprints[j], is_move[j], is_move[i]) {
                edges.push(Edge { from: i, to: j, kind });
            }
        }
    }

    // Components.
    let mut dsu = Dsu::new(n);
    for e in &edges {
        dsu.union(e.from, e.to);
    }
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let r = dsu.find(i);
        by_root.entry(r).or_default().push(i);
    }
    let components: Vec<Vec<usize>> = by_root.into_values().collect();

    // Certificate: canonical topological order.
    let canonical = canonical_order(&ops, &footprints, &edges);

    // Certificate: redundant no-op text writes.
    let mut redundant = Vec::new();
    for (i, m) in ops.iter().enumerate() {
        if let Mutation::SetText {
            target: NodeRef::Node(t),
            text,
        } = m
        {
            if tree.is_alive(*t) {
                if let NodeKind::Text { value } = tree.kind(*t) {
                    if value == text {
                        redundant.push(i);
                    }
                }
            }
        }
    }

    // Certificate: nil components (create+delete cancellation).
    let mut nil_components = Vec::new();
    'comp: for (c, members) in components.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let mut created: Vec<u32> = Vec::new();
        for &i in members {
            match ops[i] {
                Mutation::CreateElement { id, .. } | Mutation::CreateNode { id, .. } => {
                    created.push(id.0);
                }
                Mutation::AppendChildren { ids, .. } => {
                    created.extend(ids.iter().map(|l| l.0));
                }
                Mutation::SetText { target, .. }
                | Mutation::Delete { target }
                | Mutation::MoveSubtree { target, .. } => {
                    if matches!(target, NodeRef::Node(_)) {
                        continue 'comp;
                    }
                }
                Mutation::Replace { target, id, .. } => {
                    if matches!(target, NodeRef::Node(_)) {
                        continue 'comp;
                    }
                    created.push(id.0);
                }
            }
        }
        if created.is_empty() {
            continue;
        }
        if created.iter().all(|&l| builder.created_id_dies(l)) {
            nil_components.push(c);
        }
    }

    Ok(AnalyzedPlan {
        len: n,
        footprints,
        edges,
        components,
        canonical,
        redundant,
        nil_components,
    })
}

// ---------------------------------------------------------------------
// Certificate consumers: the batch optimizer and the parallel fan-out.
// ---------------------------------------------------------------------

fn check_plan(plan: &AnalyzedPlan, log: &MutationLog) -> Result<(), TreeError> {
    if plan.len != log.len() {
        return Err(TreeError::Invariant(
            "analyzed plan does not cover this log".to_string(),
        ));
    }
    Ok(())
}

/// How a validated log should be applied through its analyzed plan —
/// the one knob set shared by every apply entry point
/// (`Document::apply_opts`, `Store::apply_opts`, the flux DSL's
/// `update`). Each certificate is *requested* here and *granted* only
/// when the session's scheme claims the matching capability, so an
/// option set is always safe to pass: on a scheme without the
/// capability it degrades to sequential order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOptions {
    /// Request the canonical reorder certificate (granted only for
    /// [`order_independent`](DynScheme::order_independent) schemes).
    pub reorder: bool,
    /// Request nil-component cancellation (granted only when the
    /// scheme also claims
    /// [`cancellation_neutral`](DynScheme::cancellation_neutral)).
    pub coalesce: bool,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        ApplyOptions::analyzed()
    }
}

impl ApplyOptions {
    /// Original op order, no cancellation — byte- and counter-identical
    /// to [`apply_log_dyn`](crate::mutations::apply_log_dyn) modulo
    /// `peak_label_bits` sampling instants.
    pub fn sequential() -> ApplyOptions {
        ApplyOptions {
            reorder: false,
            coalesce: false,
        }
    }

    /// Request the canonical reorder (the historical
    /// [`apply_plan_dyn`] behaviour). This is the default.
    pub fn analyzed() -> ApplyOptions {
        ApplyOptions {
            reorder: true,
            coalesce: false,
        }
    }

    /// Request reorder *and* nil-component cancellation (the
    /// historical [`apply_plan_coalesced_dyn`] behaviour).
    pub fn coalesced() -> ApplyOptions {
        ApplyOptions {
            reorder: true,
            coalesce: true,
        }
    }

    /// Builder: set the reorder request.
    pub fn with_reorder(mut self, reorder: bool) -> ApplyOptions {
        self.reorder = reorder;
        self
    }

    /// Builder: set the coalesce request.
    pub fn with_coalesce(mut self, coalesce: bool) -> ApplyOptions {
        self.coalesce = coalesce;
        self
    }

    /// Intersect the requested certificates with the scheme's declared
    /// capabilities, yielding the `(reorder, cancel)` pair actually
    /// granted. Cancellation additionally requires reorder, matching
    /// [`AnalyzedPlan::execution_order`]'s contract.
    pub fn granted(self, order_independent: bool, cancellation_neutral: bool) -> (bool, bool) {
        let reorder = self.reorder && order_independent;
        let cancel = self.coalesce && reorder && cancellation_neutral;
        (reorder, cancel)
    }

    /// The execution order these options certify for `plan` under
    /// `session`'s declared capabilities: requested certificates are
    /// intersected with what the scheme actually claims.
    pub fn execution_order(self, plan: &AnalyzedPlan, session: &dyn DynScheme) -> Vec<usize> {
        let (reorder, cancel) =
            self.granted(session.order_independent(), session.cancellation_neutral());
        plan.execution_order(reorder, cancel)
    }
}

/// The unified analyzed-apply entry point: apply `log` through `plan`
/// in the order certified by `opts` and the session's capabilities.
/// Atomic like `apply_log_dyn`: any failure rolls tree and session
/// back. [`apply_plan_dyn`] and [`apply_plan_coalesced_dyn`] are thin
/// wrappers over this.
pub fn apply_plan_with_dyn(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    log: &MutationLog,
    plan: &AnalyzedPlan,
    opts: ApplyOptions,
) -> Result<DriveStats, TreeError> {
    check_plan(plan, log)?;
    let order = opts.execution_order(plan, session);
    apply_in_order(tree, session, log, &order)
}

fn apply_in_order(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    log: &MutationLog,
    order: &[usize],
) -> Result<DriveStats, TreeError> {
    let ops: Vec<&Mutation> = log.iter().collect();
    let tree_snap = tree.clone();
    let sess_snap = session.save_state();
    let mut stats = DriveStats::default();
    let mut binds = LogBindings::default();
    let mut failed = None;
    for (step, &i) in order.iter().enumerate() {
        if let Err(e) =
            apply_mutation_dyn(tree, Some(&mut *session), None, &mut binds, ops[i], &mut stats)
        {
            failed = Some(e);
            break;
        }
        if step % CHECKPOINT_EVERY == 0 {
            stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
        }
    }
    if let Some(e) = failed {
        *tree = tree_snap;
        if !session.restore_state(sess_snap) {
            return Err(TreeError::Invariant(
                "batch rollback: session snapshot was rejected".to_string(),
            ));
        }
        return Err(e);
    }
    stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
    stats.end_mean_bits = session.mean_bits();
    stats.end_max_bits = session.max_bits();
    Ok(stats)
}

/// Apply `log` through its analyzed plan: revalidation is skipped (the
/// analysis already validated), redundant no-op writes are dropped, and
/// — when the session's scheme is order-independent — the ops run in
/// the certified canonical order. Atomic like `apply_log_dyn`: any
/// failure rolls tree and session back. Work counters (`inserts`,
/// `deletes`, `relabeled`) match sequential apply exactly; only
/// `peak_label_bits` may differ, as its checkpoints sample different
/// instants.
pub fn apply_plan_dyn(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    log: &MutationLog,
    plan: &AnalyzedPlan,
) -> Result<DriveStats, TreeError> {
    // Thin wrapper: `ApplyOptions::analyzed()` is this entry point's
    // historical contract, kept for existing callers.
    apply_plan_with_dyn(tree, session, log, plan, ApplyOptions::analyzed())
}

/// [`apply_plan_dyn`] with create+delete cancellation: nil components
/// are skipped entirely when the scheme claims both
/// [`order_independent`](DynScheme::order_independent) (no temporal
/// label state other components could observe) and
/// [`cancellation_neutral`](DynScheme::cancellation_neutral) (inserts
/// never rewrite neighbour labels, so a cancelled scratch subtree
/// leaves no residue). Document bytes and final labels match
/// sequential apply; the work counters intentionally shrink — that
/// saved work is the coalesce ratio the bench reports.
pub fn apply_plan_coalesced_dyn(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    log: &MutationLog,
    plan: &AnalyzedPlan,
) -> Result<DriveStats, TreeError> {
    // Thin wrapper: `ApplyOptions::coalesced()` is this entry point's
    // historical contract, kept for existing callers.
    apply_plan_with_dyn(tree, session, log, plan, ApplyOptions::coalesced())
}

/// What one shard of [`par_apply_independent`] produced.
pub struct ShardOutcome {
    /// Original op indices this shard applied (one plan component).
    pub component: Vec<usize>,
    /// The shard's document after its sub-log.
    pub tree: XmlTree,
    /// Final labels, as `(arena index, display form)` in id order.
    pub labels: Vec<(usize, String)>,
    /// The shard's drive stats.
    pub stats: DriveStats,
}

/// Fan the plan's provably independent sub-logs across document shards
/// on the `xupd-exec` pool: every component gets its own clone of
/// `base` and a fresh session from `factory`, and applies only its own
/// ops. Results come back in component order regardless of
/// `XUPD_THREADS`, and the first (lowest-component) error wins — so
/// output is thread-count invariant, which `scripts/ci.sh` checks.
pub fn par_apply_independent(
    base: &XmlTree,
    factory: fn() -> Box<dyn DynScheme>,
    log: &MutationLog,
    plan: &AnalyzedPlan,
) -> Result<Vec<ShardOutcome>, TreeError> {
    check_plan(plan, log)?;
    let sublogs = plan.independent_sublogs(log)?;
    let shards: Vec<(Vec<usize>, MutationLog)> = plan
        .components
        .iter()
        .cloned()
        .zip(sublogs)
        .collect();
    xupd_exec::try_par_map(&shards, |(component, sub)| {
        let mut tree = base.clone();
        let mut session = factory();
        session.label_tree(&tree)?;
        let stats = crate::mutations::apply_log_dyn(&mut tree, session.as_mut(), sub)?;
        Ok(ShardOutcome {
            component: component.clone(),
            labels: session.labels_display(),
            tree,
            stats,
        })
    })
}

// ---------------------------------------------------------------------
// Pairwise structural oracle.
// ---------------------------------------------------------------------

/// The precise pairwise verdict: structural commutation or a witnessed
/// conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairVerdict {
    /// Applying `a` then `b` (as one-op batches) and `b` then `a`
    /// yields byte-identical documents and the same per-op success
    /// pattern.
    Commutes,
    /// The two orders genuinely diverge — in document bytes or in
    /// which ops succeed.
    Conflicts(ConflictKind),
}

/// Pairwise footprint of one self-contained op.
struct PairFacts {
    refs: Vec<u32>,
    gap: Option<GapKey>,
    /// Uniform payload of the created run at the gap, when every node
    /// the op inserts has the same kind (`None` when nothing uniform
    /// is inserted — e.g. a move).
    gap_payload: Option<NodeKind>,
    text: Option<(u32, String)>,
    deleted: Option<Extent>,
    is_move: bool,
    is_delete: bool,
    /// Row of the subtree root a `MoveSubtree` relocates.
    moved_root: Option<u32>,
    /// Row of a `Before`/`After` destination anchor. Sibling-relative
    /// placement follows the anchor *wherever it currently is*, so it
    /// is order-sensitive against an op that moves that exact node
    /// (anchors strictly inside a moved subtree just ride along).
    sibling_anchor: Option<u32>,
}

fn pair_place(
    tree: &XmlTree,
    idx: &DocIndex,
    place: Place,
    facts: &mut PairFacts,
) -> Result<(), TreeError> {
    let node = |r: NodeRef| match r {
        NodeRef::Node(n) => Ok(n),
        NodeRef::New(l) => Err(TreeError::Invariant(format!(
            "pairwise verdicts need self-contained ops; log id #{} crosses ops",
            l.0
        ))),
    };
    match place {
        Place::FirstChildOf(r) => {
            let p = node(r)?;
            let prow = idx.row(p)?;
            facts.refs.push(prow);
            facts.gap = Some(GapKey {
                parent: prow,
                left: GapSlot::Start,
            });
        }
        Place::LastChildOf(r) => {
            let p = node(r)?;
            let prow = idx.row(p)?;
            facts.refs.push(prow);
            let left = match tree.last_child(p) {
                Some(lc) => GapSlot::AfterNode(idx.row(lc)?),
                None => GapSlot::Start,
            };
            facts.gap = Some(GapKey { parent: prow, left });
        }
        Place::Before(r) | Place::After(r) => {
            let s = node(r)?;
            let srow = idx.row(s)?;
            facts.refs.push(srow);
            facts.sibling_anchor = Some(srow);
            let parent = tree.parent(s).ok_or(TreeError::NoParent(s))?;
            let prow = idx.row(parent)?;
            let left = if matches!(place, Place::After(_)) {
                GapSlot::AfterNode(srow)
            } else {
                match tree.prev_sibling(s) {
                    Some(ps) => GapSlot::AfterNode(idx.row(ps)?),
                    None => GapSlot::Start,
                }
            };
            facts.gap = Some(GapKey { parent: prow, left });
        }
    }
    Ok(())
}

fn pair_facts(tree: &XmlTree, idx: &DocIndex, m: &Mutation) -> Result<PairFacts, TreeError> {
    let mut facts = PairFacts {
        refs: Vec::new(),
        gap: None,
        gap_payload: None,
        text: None,
        deleted: None,
        is_move: false,
        is_delete: false,
        moved_root: None,
        sibling_anchor: None,
    };
    let node = |r: NodeRef| match r {
        NodeRef::Node(n) => Ok(n),
        NodeRef::New(l) => Err(TreeError::Invariant(format!(
            "pairwise verdicts need self-contained ops; log id #{} crosses ops",
            l.0
        ))),
    };
    match m {
        Mutation::CreateElement { name, place, .. } => {
            pair_place(tree, idx, *place, &mut facts)?;
            facts.gap_payload = Some(NodeKind::element(name.clone()));
        }
        Mutation::CreateNode { kind, place, .. } => {
            pair_place(tree, idx, *place, &mut facts)?;
            facts.gap_payload = Some(kind.clone());
        }
        Mutation::SetText { target, text } => {
            let t = node(*target)?;
            let row = idx.row(t)?;
            facts.refs.push(row);
            facts.text = Some((row, text.clone()));
        }
        Mutation::Replace { target, name, .. } => {
            let t = node(*target)?;
            let trow = idx.row(t)?;
            facts.refs.push(trow);
            facts.deleted = Some(idx.extent(trow));
            let parent = tree.parent(t).ok_or(TreeError::RootImmutable)?;
            let prow = idx.row(parent)?;
            facts.gap = Some(GapKey {
                parent: prow,
                left: GapSlot::Own(trow),
            });
            facts.gap_payload = Some(NodeKind::element(name.clone()));
        }
        Mutation::Delete { target } => {
            let t = node(*target)?;
            let trow = idx.row(t)?;
            facts.refs.push(trow);
            facts.deleted = Some(idx.extent(trow));
            facts.is_delete = true;
        }
        Mutation::AppendChildren { parent, name, .. } => {
            let p = node(*parent)?;
            let prow = idx.row(p)?;
            facts.refs.push(prow);
            let left = match tree.last_child(p) {
                Some(lc) => GapSlot::AfterNode(idx.row(lc)?),
                None => GapSlot::Start,
            };
            facts.gap = Some(GapKey { parent: prow, left });
            facts.gap_payload = Some(NodeKind::element(name.clone()));
        }
        Mutation::MoveSubtree { target, place } => {
            let t = node(*target)?;
            let trow = idx.row(t)?;
            facts.refs.push(trow);
            pair_place(tree, idx, *place, &mut facts)?;
            facts.is_move = true;
            facts.moved_root = Some(trow);
        }
    }
    Ok(facts)
}

/// Decide, statically, whether the one-op batches `a` and `b` commute
/// on `tree` — see [`PairVerdict`] for the exact contract. Both ops
/// must be self-contained (no [`NodeRef::New`] references).
pub fn op_pair_verdict(
    tree: &XmlTree,
    a: &Mutation,
    b: &Mutation,
) -> Result<PairVerdict, TreeError> {
    let idx = DocIndex::build(tree)?;
    let fa = pair_facts(tree, &idx, a)?;
    let fb = pair_facts(tree, &idx, b)?;

    // Text/text: the same point written twice diverges unless both
    // write the same value.
    if let (Some((ta, va)), Some((tb, vb))) = (&fa.text, &fb.text) {
        if ta == tb {
            return Ok(if va == vb {
                PairVerdict::Commutes
            } else {
                PairVerdict::Conflicts(ConflictKind::TextText)
            });
        }
    }

    // Identical plain deletes are idempotent as a pair (either order:
    // the first succeeds, the second fails on the same dangling
    // target) — decided before the reference checks below, which would
    // otherwise see each delete's target inside its twin's extent.
    if fa.is_delete && fb.is_delete && fa.deleted == fb.deleted {
        return Ok(PairVerdict::Commutes);
    }

    // Move destination inside the other op's deleted subtree: one
    // order moves the subtree to safety, the other strands it.
    let move_into = |mv: &PairFacts, other: &PairFacts| {
        mv.is_move
            && matches!((&mv.gap, &other.deleted), (Some(g), Some(e)) if e.contains(g.parent))
    };
    if move_into(&fa, &fb) || move_into(&fb, &fa) {
        return Ok(PairVerdict::Conflicts(ConflictKind::MoveIntoDeleted));
    }

    // Write-after-delete: one op anchors on (or targets) a row the
    // other deletes — applying the delete first invalidates the other
    // op, so the success patterns of the two orders differ.
    let touches = |x: &PairFacts, del: &PairFacts| {
        matches!(&del.deleted, Some(e) if x.refs.iter().any(|&r| e.contains(r)))
    };
    if touches(&fa, &fb) || touches(&fb, &fa) {
        return Ok(PairVerdict::Conflicts(ConflictKind::WriteAfterDelete));
    }

    // Overlapping deletions (identical plain deletes were already
    // certified idempotent above) — everything else diverges.
    if let (Some(ea), Some(eb)) = (&fa.deleted, &fb.deleted) {
        if ea.overlaps(eb) {
            return Ok(PairVerdict::Conflicts(ConflictKind::ExtentOverlap));
        }
    }

    // Two moves of the same subtree root: whichever runs second decides
    // the final position.
    if fa.moved_root.is_some() && fa.moved_root == fb.moved_root {
        return Ok(PairVerdict::Conflicts(ConflictKind::StructuralOverlap));
    }

    // A Before/After destination anchored on the exact node the other
    // op moves: the placement follows the anchor to its new home in one
    // order and stays at the old site in the other. (Anchors strictly
    // inside the moved subtree are id-stable and ride along.)
    let anchor_moved = |x: &PairFacts, mv: &PairFacts| {
        matches!((x.sibling_anchor, mv.moved_root), (Some(s), Some(r)) if s == r)
    };
    if anchor_moved(&fa, &fb) || anchor_moved(&fb, &fa) {
        return Ok(PairVerdict::Conflicts(ConflictKind::StructuralOverlap));
    }

    // Same sibling gap: order decides adjacency — unless both ops
    // insert runs of one identical kind, in which case the merged run
    // reads the same either way.
    if let (Some(ga), Some(gb)) = (&fa.gap, &fb.gap) {
        if ga == gb {
            let uniform = match (&fa.gap_payload, &fb.gap_payload) {
                (Some(ka), Some(kb)) => ka == kb,
                _ => false,
            };
            return Ok(if uniform && !fa.is_move && !fb.is_move {
                PairVerdict::Commutes
            } else {
                PairVerdict::Conflicts(ConflictKind::StructuralOverlap)
            });
        }
    }

    Ok(PairVerdict::Commutes)
}

/// True when [`op_pair_verdict`] certifies the pair order-insensitive.
pub fn commutes(tree: &XmlTree, a: &Mutation, b: &Mutation) -> Result<bool, TreeError> {
    Ok(matches!(op_pair_verdict(tree, a, b)?, PairVerdict::Commutes))
}

/// The conflict witnessed by the pair, when the verdict is not
/// commutation.
pub fn conflicts(
    tree: &XmlTree,
    a: &Mutation,
    b: &Mutation,
) -> Result<Option<ConflictKind>, TreeError> {
    Ok(match op_pair_verdict(tree, a, b)? {
        PairVerdict::Commutes => None,
        PairVerdict::Conflicts(k) => Some(k),
    })
}

// ---------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::parse;

    /// Satellite: the analyzer's write-footprint table and lint's R8
    /// mutator list are both views of `STRUCTURAL_MUTATORS` — keys
    /// must match it exactly, in order.
    #[test]
    fn mutator_table_stays_in_sync() {
        let keys: Vec<&str> = MUTATOR_FOOTPRINTS.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, xupd_xmldom::STRUCTURAL_MUTATORS);
    }

    fn doc() -> XmlTree {
        parse("<r><a><x>1</x><y>2</y></a><b><z>3</z></b><c/></r>").unwrap()
    }

    fn elem(n: &XmlTree, name: &str) -> NodeId {
        n.ids_in_doc_order()
            .into_iter()
            .find(|&id| matches!(n.kind(id), NodeKind::Element { name: e } if e == name))
            .unwrap()
    }

    fn text_node(n: &XmlTree, value: &str) -> NodeId {
        n.ids_in_doc_order()
            .into_iter()
            .find(|&id| matches!(n.kind(id), NodeKind::Text { value: v } if v == value))
            .unwrap()
    }

    #[test]
    fn disjoint_subtree_edits_partition() {
        let t = doc();
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "p".into(),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "a"))),
            },
            Mutation::CreateElement {
                id: LogId(1),
                name: "q".into(),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "b"))),
            },
            Mutation::SetText {
                target: NodeRef::Node(text_node(&t, "3")),
                text: "30".into(),
            },
        ]);
        let plan = analyze(&log, &t).unwrap();
        // a-create is independent of the b-subtree pair; the SetText
        // inside <b> shares no footprint with the structural create
        // under <b> (text points don't collide with sibling gaps), so
        // all three ops are mutually independent here.
        assert_eq!(plan.components.len(), 3);
        assert!(plan.is_independent(0, 1));
        assert!(plan.edges.is_empty());
    }

    #[test]
    fn same_parent_creates_conflict_structurally() {
        let t = doc();
        let a = elem(&t, "a");
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "p".into(),
                place: Place::FirstChildOf(NodeRef::Node(a)),
            },
            Mutation::CreateElement {
                id: LogId(1),
                name: "q".into(),
                place: Place::LastChildOf(NodeRef::Node(a)),
            },
        ]);
        let plan = analyze(&log, &t).unwrap();
        assert_eq!(plan.components.len(), 1);
        assert!(matches!(
            plan.edges[0].kind,
            EdgeKind::Conflict(ConflictKind::StructuralOverlap)
        ));
    }

    /// The hull prefilter in `analyze` must be invisible: its edge set
    /// is pinned to the unfiltered all-pairs `classify` scan on a
    /// mixed batch exercising every op family (creates under shared
    /// and distinct parents, text on pre-batch and batch-created
    /// points, delete, move).
    #[test]
    fn pair_prefilter_matches_brute_force_scan() {
        let t = parse(
            "<r><a><x>1</x><y>2</y></a><b><z>3</z></b><c><w>4</w></c><d/><e/></r>",
        )
        .unwrap();
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "p".into(),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "a"))),
            },
            Mutation::CreateElement {
                id: LogId(1),
                name: "q".into(),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "a"))),
            },
            Mutation::CreateNode {
                id: LogId(2),
                kind: NodeKind::Text {
                    value: String::new(),
                },
                place: Place::FirstChildOf(NodeRef::Node(elem(&t, "d"))),
            },
            Mutation::SetText {
                target: NodeRef::New(LogId(2)),
                text: "fresh".into(),
            },
            Mutation::SetText {
                target: NodeRef::Node(text_node(&t, "3")),
                text: "30".into(),
            },
            Mutation::Delete {
                target: NodeRef::Node(elem(&t, "c")),
            },
            Mutation::MoveSubtree {
                target: NodeRef::Node(elem(&t, "b")),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "e"))),
            },
        ]);
        let plan = analyze(&log, &t).unwrap();
        let ops: Vec<&Mutation> = log.iter().collect();
        let mut brute = Vec::new();
        for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                let a_mv = matches!(ops[i], Mutation::MoveSubtree { .. });
                let b_mv = matches!(ops[j], Mutation::MoveSubtree { .. });
                if let Some(kind) =
                    classify(&plan.footprints[i], &plan.footprints[j], b_mv, a_mv)
                {
                    brute.push(Edge { from: i, to: j, kind });
                }
            }
        }
        assert!(!brute.is_empty(), "scenario must produce real edges");
        assert_eq!(plan.edges, brute);
        // And the filter genuinely skips pairs here: the two disjoint
        // creates (ops 0/2) must share neither rows nor ids.
        let b0 = PairBounds::of(&plan.footprints[0]);
        let b2 = PairBounds::of(&plan.footprints[2]);
        assert!(!b0.may_conflict(&b2));
    }

    #[test]
    fn write_after_delete_is_named() {
        let t = doc();
        let log = MutationLog::from(vec![
            Mutation::Delete {
                target: NodeRef::Node(elem(&t, "a")),
            },
            Mutation::SetText {
                target: NodeRef::Node(text_node(&t, "1")),
                text: "10".into(),
            },
        ]);
        // Invalid as a batch (writes a consumed node) — analyze must
        // reject it exactly like validate does.
        assert!(analyze(&log, &t).is_err());
        // But the pairwise oracle names the hazard statically.
        let d = Mutation::Delete {
            target: NodeRef::Node(elem(&t, "a")),
        };
        let s = Mutation::SetText {
            target: NodeRef::Node(text_node(&t, "1")),
            text: "10".into(),
        };
        assert_eq!(
            op_pair_verdict(&t, &d, &s).unwrap(),
            PairVerdict::Conflicts(ConflictKind::WriteAfterDelete)
        );
    }

    #[test]
    fn nested_deletes_are_extent_overlap() {
        let t = doc();
        let d_outer = Mutation::Delete {
            target: NodeRef::Node(elem(&t, "a")),
        };
        let d_inner = Mutation::Delete {
            target: NodeRef::Node(elem(&t, "x")),
        };
        // The inner target row sits inside the outer extent, so the
        // reference check fires first: deleting <a> strands the <x>
        // delete.
        assert!(matches!(
            op_pair_verdict(&t, &d_outer, &d_inner).unwrap(),
            PairVerdict::Conflicts(_)
        ));
        // Identical deletes are idempotent as a pair.
        assert_eq!(
            op_pair_verdict(&t, &d_outer, &d_outer.clone()).unwrap(),
            PairVerdict::Commutes
        );
    }

    #[test]
    fn move_into_deleted_is_named() {
        let t = doc();
        let mv = Mutation::MoveSubtree {
            target: NodeRef::Node(elem(&t, "c")),
            place: Place::LastChildOf(NodeRef::Node(elem(&t, "a"))),
        };
        let del = Mutation::Delete {
            target: NodeRef::Node(elem(&t, "a")),
        };
        assert_eq!(
            op_pair_verdict(&t, &mv, &del).unwrap(),
            PairVerdict::Conflicts(ConflictKind::MoveIntoDeleted)
        );
    }

    #[test]
    fn text_text_divergence_and_noop() {
        let t = doc();
        let w1 = Mutation::SetText {
            target: NodeRef::Node(text_node(&t, "1")),
            text: "x".into(),
        };
        let w2 = Mutation::SetText {
            target: NodeRef::Node(text_node(&t, "1")),
            text: "y".into(),
        };
        assert_eq!(
            op_pair_verdict(&t, &w1, &w2).unwrap(),
            PairVerdict::Conflicts(ConflictKind::TextText)
        );
        assert_eq!(
            op_pair_verdict(&t, &w1, &w1.clone()).unwrap(),
            PairVerdict::Commutes
        );
    }

    #[test]
    fn redundant_settext_detected() {
        let t = doc();
        let log = MutationLog::from(vec![Mutation::SetText {
            target: NodeRef::Node(text_node(&t, "2")),
            text: "2".into(),
        }]);
        let plan = analyze(&log, &t).unwrap();
        assert_eq!(plan.redundant, vec![0]);
    }

    #[test]
    fn create_delete_cancellation() {
        let t = doc();
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "tmp".into(),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "c"))),
            },
            Mutation::CreateElement {
                id: LogId(1),
                name: "inner".into(),
                place: Place::FirstChildOf(NodeRef::New(LogId(0))),
            },
            Mutation::Delete {
                target: NodeRef::New(LogId(0)),
            },
        ]);
        let plan = analyze(&log, &t).unwrap();
        assert_eq!(plan.components.len(), 1);
        assert_eq!(plan.nil_components, vec![0]);
    }

    #[test]
    fn escaped_creation_is_not_nil() {
        let t = doc();
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "tmp".into(),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "c"))),
            },
            Mutation::CreateElement {
                id: LogId(1),
                name: "keeper".into(),
                place: Place::FirstChildOf(NodeRef::New(LogId(0))),
            },
            // The inner node escapes before its host dies.
            Mutation::MoveSubtree {
                target: NodeRef::New(LogId(1)),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "b"))),
            },
            Mutation::Delete {
                target: NodeRef::New(LogId(0)),
            },
        ]);
        let plan = analyze(&log, &t).unwrap();
        assert!(plan.nil_components.is_empty());
    }

    #[test]
    fn canonical_order_respects_edges_and_regroups() {
        let t = doc();
        let log = MutationLog::from(vec![
            Mutation::SetText {
                target: NodeRef::Node(text_node(&t, "3")),
                text: "z".into(),
            },
            Mutation::CreateElement {
                id: LogId(0),
                name: "p".into(),
                place: Place::LastChildOf(NodeRef::Node(elem(&t, "c"))),
            },
        ]);
        let plan = analyze(&log, &t).unwrap();
        // Independent text write and create: canonical order puts the
        // structure-building op first.
        assert_eq!(plan.canonical, vec![1, 0]);
        // Every edge is respected by construction (none here).
        assert!(plan.edges.is_empty());
    }

    #[test]
    fn plan_len_mismatch_is_rejected() {
        let t = doc();
        let log = MutationLog::from(vec![Mutation::Delete {
            target: NodeRef::Node(elem(&t, "c")),
        }]);
        let plan = analyze(&log, &t).unwrap();
        let other = MutationLog::new();
        assert!(plan.independent_sublogs(&other).is_err());
    }

    #[test]
    fn pairwise_rejects_cross_op_log_ids() {
        let t = doc();
        let a = Mutation::Delete {
            target: NodeRef::New(LogId(7)),
        };
        let b = Mutation::Delete {
            target: NodeRef::Node(elem(&t, "c")),
        };
        assert!(op_pair_verdict(&t, &a, &b).is_err());
    }
}
