//! The unified `Document` facade.
//!
//! The crates expose the full pipeline as separate entry points —
//! `EncodedDocument::encode`, `parse_xpath` + `XPathExpr::evaluate`,
//! `run_script`, `verify`, `reconstruct` — each with its own state to
//! thread. [`Document`] bundles them behind one handle:
//!
//! ```
//! use xupd_framework::Document;
//! use xupd_schemes::prefix::qed::Qed;
//! use xupd_workloads::{docs, Script, ScriptKind};
//!
//! let tree = docs::book();
//! let mut doc = Document::encode(Qed::new(), &tree).unwrap();
//! let hits = doc.xpath("//title").unwrap();
//! assert_eq!(hits.len(), 1);
//! let script = Script::generate(ScriptKind::Random, 20, doc.tree().len(), 9);
//! doc.apply(&script).unwrap();
//! assert!(doc.verify().unwrap().is_sound());
//! let rebuilt = doc.reconstruct().unwrap();
//! assert_eq!(rebuilt.len(), doc.tree().len());
//! ```
//!
//! The document owns a live [`XmlTree`] plus the scheme and its
//! labelling, updated incrementally by [`Document::apply`]. Query-side
//! calls ([`Document::xpath`], [`Document::reconstruct`],
//! [`Document::encoded`]) run over an encoded snapshot of the current
//! tree that is built lazily — queries between two updates share one
//! snapshot. Invalidation is **footprint-driven**, not wholesale: a
//! batch with zero effective ops (empty, all-redundant, or a cancelled
//! create/delete component under a cancellation-neutral scheme) leaves
//! the snapshot standing, a text-only batch patches the snapshot's text
//! rows in place, and only structural batches discard it. Queries
//! registered through [`Document::register_query`] are maintained
//! incrementally by the [`QueryCache`] instead of being re-evaluated
//! per batch.

use crate::analysis::{self, AnalyzedPlan};
use crate::driver::{run_script, DriveStats};
use crate::mutations::{self, Mutation, MutationLog, NodeRef};
use crate::querycache::{CacheStats, QueryCache, QueryId};
use crate::verify::{verify, VerifyOutcome};
use std::fmt;
use xupd_encoding::{parse_xpath, EncodedDocument, XPathError};
use xupd_labelcore::{Labeling, LabelingScheme, SessionMut};
use xupd_workloads::Script;
use xupd_xmldom::{TreeError, XmlTree};

/// Random node pairs sampled by [`Document::verify`] for each relation.
const VERIFY_SAMPLE_PAIRS: usize = 300;
/// RNG seed for [`Document::verify`] sampling — fixed so facade
/// verification is reproducible.
const VERIFY_SEED: u64 = 0xFACADE;

/// Any error a facade operation can surface: a tree/labelling error or
/// an XPath parse error.
#[derive(Debug)]
pub enum DocumentError {
    /// Tree or labelling failure.
    Tree(TreeError),
    /// XPath expression did not parse.
    XPath(XPathError),
}

impl fmt::Display for DocumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocumentError::Tree(e) => write!(f, "{e}"),
            DocumentError::XPath(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DocumentError {}

impl From<TreeError> for DocumentError {
    fn from(e: TreeError) -> Self {
        DocumentError::Tree(e)
    }
}

impl From<XPathError> for DocumentError {
    fn from(e: XPathError) -> Self {
        DocumentError::XPath(e)
    }
}

/// A labelled XML document under one scheme: live tree + labelling for
/// updates and verification, lazily encoded snapshot for queries.
pub struct Document<S: LabelingScheme + Clone + 'static> {
    tree: XmlTree,
    scheme: S,
    labeling: Labeling<S::Label>,
    snapshot: Option<EncodedDocument<S>>,
    /// How many times the lazy query snapshot has been (re)built — one
    /// per first query after an update, however many ops the update
    /// batched. Observable for the once-per-batch invalidation contract.
    snapshot_rebuilds: u64,
    /// Incrementally maintained result sets for registered queries.
    cache: QueryCache,
}

impl<S: LabelingScheme + Clone + 'static> Document<S> {
    /// Label a copy of `tree` under `scheme`.
    pub fn encode(mut scheme: S, tree: &XmlTree) -> Result<Self, TreeError> {
        let tree = tree.clone();
        let labeling = scheme.label_tree(&tree)?;
        Ok(Document {
            tree,
            scheme,
            labeling,
            snapshot: None,
            snapshot_rebuilds: 0,
            cache: QueryCache::new(),
        })
    }

    /// The live tree.
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// The scheme instance.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The live labelling.
    pub fn labeling(&self) -> &Labeling<S::Label> {
        &self.labeling
    }

    /// The encoded snapshot of the current tree, building it on first
    /// use after an update. Row indices returned by [`Document::xpath`]
    /// address this document.
    pub fn encoded(&mut self) -> Result<&EncodedDocument<S>, TreeError> {
        match self.snapshot {
            Some(ref enc) => Ok(enc),
            None => {
                let enc = EncodedDocument::encode(self.scheme.clone(), &self.tree)?;
                self.snapshot_rebuilds += 1;
                Ok(self.snapshot.insert(enc))
            }
        }
    }

    /// Evaluate an XPath expression against the current tree. Returns
    /// matching row indices into [`Document::encoded`], in document
    /// order.
    pub fn xpath(&mut self, expr: &str) -> Result<Vec<usize>, DocumentError> {
        let expr = parse_xpath(expr)?;
        Ok(expr.evaluate(self.encoded()?))
    }

    /// Replay an update script against the live tree through the
    /// scheme's insertion/deletion path, invalidating the query
    /// snapshot. Scripts bypass the mutation-log analyzer, so the
    /// query cache is marked stale and fully refreshes on the next
    /// cached read — incremental maintenance needs a footprint.
    pub fn apply(&mut self, script: &Script) -> Result<DriveStats, TreeError> {
        self.snapshot = None;
        self.cache.mark_stale();
        run_script(&mut self.tree, &mut self.scheme, &mut self.labeling, script)
    }

    /// Apply a [`MutationLog`] atomically against the live tree (see
    /// [`mutations::apply_log`]): validated up front, all-or-nothing on
    /// failure. A rejected batch changes nothing — snapshot and cache
    /// stay put.
    ///
    /// Invalidation is footprint-driven:
    ///
    /// * **zero effective ops** (empty log, all writes redundant, or a
    ///   cancelled create/delete component under a scheme that is
    ///   [`cancellation_neutral`](LabelingScheme::cancellation_neutral))
    ///   — the snapshot survives untouched;
    /// * **text-only batch** — the snapshot's text rows are patched in
    ///   place, no rebuild;
    /// * **structural batch** — the snapshot is discarded (rebuilt
    ///   lazily on the next query), exactly once per batch.
    ///
    /// Registered queries are then maintained incrementally by the
    /// [`QueryCache`] from the same analysis.
    pub fn apply_log(&mut self, log: &MutationLog) -> Result<DriveStats, TreeError> {
        if (self.cache.is_empty() || self.cache.is_stale()) && self.snapshot.is_none() {
            // Nothing to maintain: skip the analysis pass entirely so a
            // cacheless document pays exactly the pre-cache cost.
            let stats =
                mutations::apply_log(&mut self.tree, &mut self.scheme, &mut self.labeling, log)?;
            self.cache.mark_stale();
            return Ok(stats);
        }
        let plan = analysis::analyze(log, &self.tree)?;
        let effective = plan.execution_order(false, self.scheme.cancellation_neutral());
        let stats =
            mutations::apply_log(&mut self.tree, &mut self.scheme, &mut self.labeling, log)?;
        self.maintain_after_apply(log, &plan, &effective);
        Ok(stats)
    }

    /// Apply a [`MutationLog`] through a freshly analyzed plan under
    /// `opts` (see [`analysis::ApplyOptions`]): the one entry point
    /// unifying `apply_log` / `apply_plan_dyn` /
    /// `apply_plan_coalesced_dyn` semantics behind an options value.
    /// Snapshot and cache maintenance match [`Document::apply_log`].
    pub fn apply_opts(
        &mut self,
        log: &MutationLog,
        opts: analysis::ApplyOptions,
    ) -> Result<DriveStats, TreeError> {
        let plan = analysis::analyze(log, &self.tree)?;
        self.apply_planned(log, &plan, opts)
    }

    /// [`Document::apply_opts`] with a caller-supplied plan — the
    /// write path for compiled flux programs, whose compilation
    /// already analyzed the log. The plan must cover `log` (same
    /// length); certificates requested in `opts` are granted only
    /// where the scheme's capabilities allow.
    pub fn apply_planned(
        &mut self,
        log: &MutationLog,
        plan: &AnalyzedPlan,
        opts: analysis::ApplyOptions,
    ) -> Result<DriveStats, TreeError> {
        let stats = {
            let mut session = SessionMut::new(&mut self.scheme, &mut self.labeling);
            analysis::apply_plan_with_dyn(&mut self.tree, &mut session, log, plan, opts)?
        };
        let (reorder, cancel) = opts.granted(
            self.scheme.order_independent(),
            self.scheme.cancellation_neutral(),
        );
        let effective = plan.execution_order(reorder, cancel);
        self.maintain_after_apply(log, plan, &effective);
        Ok(stats)
    }

    /// The shared post-apply maintenance tail: footprint-driven
    /// snapshot survival / text patching / invalidation, then
    /// incremental cache absorption. `effective` is the op order that
    /// actually executed.
    fn maintain_after_apply(
        &mut self,
        log: &MutationLog,
        plan: &AnalyzedPlan,
        effective: &[usize],
    ) {
        if effective.is_empty() {
            // No observable change: tree bytes and labels are identical
            // to the pre-batch state, so snapshot and cache stay exact.
            return;
        }
        let ops: Vec<&Mutation> = log.iter().collect();
        let text_only = effective.iter().all(|&i| {
            matches!(
                ops.get(i),
                Some(Mutation::SetText {
                    target: NodeRef::Node(_),
                    ..
                })
            )
        });
        if text_only {
            self.patch_snapshot_text(&ops, effective);
        } else {
            self.snapshot = None;
        }
        if !self.cache.is_empty() && !self.cache.is_stale() {
            // Absorb failures (unreachable in practice) degrade to a
            // stale cache, never to a wrong answer.
            if self.cache.absorb(log, plan, effective, &self.tree).is_err() {
                self.cache.mark_stale();
            }
        }
    }

    /// Rewrite the snapshot's text rows in place for a text-only batch;
    /// positions, topology and labels are untouched by construction. On
    /// any inconsistency the snapshot is dropped instead (lazy rebuild).
    fn patch_snapshot_text(&mut self, ops: &[&Mutation], effective: &[usize]) {
        let Some(snap) = self.snapshot.as_mut() else {
            return;
        };
        for &i in effective {
            if let Some(Mutation::SetText {
                target: NodeRef::Node(id),
                text,
            }) = ops.get(i)
            {
                let patched = snap
                    .row_of_source(*id)
                    .map(|row| snap.patch_text(row, text).is_ok());
                if patched != Some(true) {
                    self.snapshot = None;
                    return;
                }
            }
        }
    }

    /// Register an XPath query for incremental maintenance: the result
    /// set is materialized now and kept exact across every
    /// [`Document::apply_log`] batch by impact analysis. With
    /// `want_strings`, XPath string values are cached alongside the
    /// rows.
    pub fn register_query(
        &mut self,
        expr: &str,
        want_strings: bool,
    ) -> Result<QueryId, DocumentError> {
        let expr = parse_xpath(expr)?;
        Ok(self.cache.register(&expr, want_strings, &self.tree)?)
    }

    /// Read-only cached result rows of a registered query: served
    /// straight from the [`QueryCache`] with **no** side effects — no
    /// snapshot rebuild, no cache refresh, no hit counting. Returns
    /// `None` when the cache is stale (an untracked [`Document::apply`]
    /// script ran) or `q` was never registered; the caller must then
    /// take the mutable [`Document::query_cached`] path.
    ///
    /// This is the store's concurrent read path: any number of readers
    /// can share `&Document` without ever triggering the redundant
    /// snapshot rebuilds an `&mut` accessor would race to perform.
    pub fn cached_rows(&self, q: QueryId) -> Option<&[usize]> {
        (!self.cache.is_stale() && q < self.cache.len()).then(|| self.cache.rows(q))
    }

    /// Read-only cached string values of a registered query (see
    /// [`Document::cached_rows`]; empty unless registered with
    /// `want_strings`).
    pub fn cached_strings_ref(&self, q: QueryId) -> Option<&[String]> {
        (!self.cache.is_stale() && q < self.cache.len()).then(|| self.cache.strings(q))
    }

    /// The current encoded snapshot **if one is already built** — never
    /// builds one. Readers that can live without a snapshot (cached
    /// queries, stats) use this to stay rebuild-free.
    pub fn snapshot_ref(&self) -> Option<&EncodedDocument<S>> {
        self.snapshot.as_ref()
    }

    /// The maintained result rows of a registered query (preorder
    /// positions into [`Document::encoded`]), served from the cache —
    /// no re-evaluation unless an untracked update forced a refresh.
    pub fn query_cached(&mut self, q: QueryId) -> Result<&[usize], TreeError> {
        if self.cache.is_stale() {
            self.cache.refresh(&self.tree)?;
        }
        Ok(self.cache.hit(q))
    }

    /// The maintained string values of a registered query (empty unless
    /// registered with `want_strings`).
    pub fn cached_strings(&mut self, q: QueryId) -> Result<&[String], TreeError> {
        if self.cache.is_stale() {
            self.cache.refresh(&self.tree)?;
        }
        Ok(self.cache.strings(q))
    }

    /// Cumulative cache counters, alongside
    /// [`Document::snapshot_rebuilds`].
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Read access to the query cache (impact summaries, patterns).
    pub fn query_cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Mutable access to the query cache — test seams only.
    #[doc(hidden)]
    pub fn query_cache_mut(&mut self) -> &mut QueryCache {
        &mut self.cache
    }

    /// How many times the lazy query snapshot has been (re)built.
    pub fn snapshot_rebuilds(&self) -> u64 {
        self.snapshot_rebuilds
    }

    /// Verify the live labelling against tree ground truth (document
    /// order, duplicates, sampled relation and level answers).
    pub fn verify(&self) -> Result<VerifyOutcome, TreeError> {
        verify(
            &self.tree,
            &self.scheme,
            &self.labeling,
            VERIFY_SAMPLE_PAIRS,
            VERIFY_SEED,
        )
    }

    /// Rebuild an [`XmlTree`] from the encoded snapshot alone — the
    /// round-trip the paper's reconstruction property asks for.
    pub fn reconstruct(&mut self) -> Result<XmlTree, TreeError> {
        let enc = self.encoded()?;
        xupd_encoding::reconstruct::reconstruct(enc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::{docs, Script, ScriptKind};

    #[test]
    fn facade_round_trip_queries_updates_and_verifies() {
        let tree = docs::xmark_like(41, 80);
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        let before = doc.xpath("//item").unwrap();
        assert!(!before.is_empty());

        let script = Script::generate(ScriptKind::Random, 40, doc.tree().len(), 5);
        let stats = doc.apply(&script).unwrap();
        assert_eq!(stats.inserts, 40);
        assert!(doc.verify().unwrap().is_sound());

        // snapshot rebuilt after the update: the new nodes are visible
        let rebuilt = doc.reconstruct().unwrap();
        assert_eq!(rebuilt.len(), doc.tree().len());
    }

    #[test]
    fn snapshot_is_reused_between_updates() {
        let tree = docs::book();
        let mut doc = Document::encode(DeweyId::new(), &tree).unwrap();
        let a = doc.encoded().unwrap() as *const _;
        doc.xpath("//title").unwrap();
        let b = doc.encoded().unwrap() as *const _;
        assert_eq!(a, b, "no re-encode without an update");
        doc.apply(&Script::generate(ScriptKind::AppendOnly, 3, tree.len(), 1))
            .unwrap();
        let c = doc.encoded().unwrap() as *const _;
        assert!(doc.tree().len() > tree.len());
        let _ = c; // rebuilt lazily; contents now include the appended nodes
        assert_eq!(doc.encoded().unwrap().len(), doc.tree().len());
    }

    #[test]
    fn batch_apply_invalidates_snapshot_exactly_once() {
        use crate::mutations::{batch_of, Mutation, MutationLog, NodeRef};
        use xupd_xmldom::NodeId;

        let tree = docs::random_tree(3, 60);
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        doc.xpath("//e1").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "initial lazy build");

        // a 100-op batch costs exactly one rebuild, observed only when
        // the next query forces the lazy snapshot
        let script = Script::generate(ScriptKind::Random, 100, tree.len(), 8);
        let log = batch_of(&script, doc.tree()).unwrap();
        assert!(log.len() >= 90, "most ops survive the skip rules");
        doc.apply_log(&log).unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "invalidation alone is free");
        doc.xpath("//e1").unwrap();
        doc.xpath("//e2").unwrap();
        doc.reconstruct().unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 2, "one rebuild per batch");

        // a rejected batch changes nothing and keeps the snapshot
        let bad = MutationLog::from(vec![Mutation::Delete {
            target: NodeRef::Node(NodeId::from_index(doc.tree().id_bound() + 9)),
        }]);
        doc.apply_log(&bad).unwrap_err();
        doc.xpath("//e1").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 2, "rejected batch is free too");
    }

    #[test]
    fn noop_batches_do_not_invalidate_snapshot() {
        use crate::mutations::{LogId, Mutation, MutationLog, NodeRef, Place};
        use xupd_xmldom::NodeKind;

        let tree = docs::book();
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        doc.xpath("//title").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "initial lazy build");

        // an empty batch has zero effective ops
        doc.apply_log(&MutationLog::from(Vec::new())).unwrap();
        doc.xpath("//title").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "empty batch is a no-op");

        // a redundant text write (same value) is certified no-op
        let (text_id, text_val) = doc
            .tree()
            .ids_in_doc_order()
            .into_iter()
            .find_map(|id| match doc.tree().kind(id) {
                NodeKind::Text { value } => Some((id, value.clone())),
                _ => None,
            })
            .unwrap();
        doc.apply_log(&MutationLog::from(vec![Mutation::SetText {
            target: NodeRef::Node(text_id),
            text: text_val,
        }]))
        .unwrap();
        doc.xpath("//title").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "redundant write is a no-op");

        // a cancelled create+delete component leaves zero residue under
        // a cancellation-neutral scheme (Qed)
        assert!(doc.scheme().cancellation_neutral());
        let root_el = doc.xpath("/book").unwrap()[0];
        let root_id = doc.encoded().unwrap().source_id(root_el);
        doc.apply_log(&MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "tmp".to_string(),
                place: Place::LastChildOf(NodeRef::Node(root_id)),
            },
            Mutation::Delete {
                target: NodeRef::New(LogId(0)),
            },
        ]))
        .unwrap();
        doc.xpath("//title").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "cancelled component is a no-op");

        // ...but a real structural edit still invalidates exactly once
        doc.apply_log(&MutationLog::from(vec![Mutation::CreateElement {
            id: LogId(0),
            name: "appendix".to_string(),
            place: Place::LastChildOf(NodeRef::Node(root_id)),
        }]))
        .unwrap();
        doc.xpath("//appendix").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 2, "structural batch invalidates");
    }

    #[test]
    fn text_only_batches_patch_snapshot_in_place() {
        use crate::mutations::{Mutation, MutationLog, NodeRef};

        let tree = docs::book();
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        let title_row = doc.xpath("//title").unwrap()[0];
        assert_eq!(doc.snapshot_rebuilds(), 1);
        let enc = doc.encoded().unwrap();
        let text_row = enc
            .descendant_range(title_row)
            .find(|&r| matches!(enc.row(r).kind, xupd_xmldom::NodeKind::Text { .. }))
            .unwrap();
        let text_id = enc.source_id(text_row);

        doc.apply_log(&MutationLog::from(vec![Mutation::SetText {
            target: NodeRef::Node(text_id),
            text: "Growing Up With a Dream".to_string(),
        }]))
        .unwrap();
        // same snapshot object, new content — no rebuild happened
        assert_eq!(doc.snapshot_rebuilds(), 1, "text batch patches in place");
        let enc = doc.encoded().unwrap();
        assert_eq!(enc.string_value(title_row), "Growing Up With a Dream");
        assert_eq!(doc.snapshot_rebuilds(), 1);
        assert!(doc.verify().unwrap().is_sound());
    }

    #[test]
    fn registered_queries_survive_batches_and_stay_exact() {
        use crate::mutations::{LogId, Mutation, MutationLog, NodeRef, Place};

        let tree = docs::xmark_like(23, 70);
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        let q = doc.register_query("//item", true).unwrap();
        let base = doc.query_cached(q).unwrap().to_vec();
        assert_eq!(base, doc.xpath("//item").unwrap());

        // structural batch: cached rows track the fresh evaluation
        let region = doc.xpath("//regions").unwrap()[0];
        let region_id = doc.encoded().unwrap().source_id(region);
        doc.apply_log(&MutationLog::from(vec![Mutation::CreateElement {
            id: LogId(0),
            name: "item".to_string(),
            place: Place::FirstChildOf(NodeRef::Node(region_id)),
        }]))
        .unwrap();
        let cached = doc.query_cached(q).unwrap().to_vec();
        assert_eq!(cached, doc.xpath("//item").unwrap());
        assert_eq!(cached.len(), base.len() + 1);

        // script path bypasses the analyzer: cache goes stale, then a
        // cached read refreshes and is exact again
        doc.apply(&Script::generate(ScriptKind::Random, 15, doc.tree().len(), 3))
            .unwrap();
        assert!(doc.query_cache().is_stale());
        let cached = doc.query_cached(q).unwrap().to_vec();
        assert_eq!(cached, doc.xpath("//item").unwrap());
        assert!(doc.cache_stats().hits >= 2);
    }

    #[test]
    fn read_only_accessors_never_rebuild_the_snapshot() {
        use crate::mutations::{LogId, Mutation, MutationLog, NodeRef, Place};

        let tree = docs::xmark_like(11, 60);
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        let q = doc.register_query("//item", true).unwrap();
        let oracle = doc.xpath("//item").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "xpath built the one snapshot");

        // a structural batch discards the snapshot and repairs the cache
        let region_id = {
            let region = doc.xpath("//regions").unwrap()[0];
            doc.encoded().unwrap().source_id(region)
        };
        doc.apply_log(&MutationLog::from(vec![Mutation::CreateElement {
            id: LogId(0),
            name: "item".to_string(),
            place: Place::FirstChildOf(NodeRef::Node(region_id)),
        }]))
        .unwrap();
        assert!(doc.snapshot_ref().is_none(), "structural batch dropped it");

        // concurrent-reader shape: many cached reads off &Document fan
        // out on the pool — none of them may rebuild the snapshot
        let rebuilds_before = doc.snapshot_rebuilds();
        let shared = &doc;
        let reads: Vec<usize> = (0..64).collect();
        let row_counts = xupd_exec::par_map(&reads, |_| {
            let rows = shared.cached_rows(q).expect("cache is fresh");
            let strings = shared.cached_strings_ref(q).expect("cache is fresh");
            assert_eq!(rows.len(), strings.len());
            rows.len()
        });
        assert!(row_counts.iter().all(|&n| n == oracle.len() + 1));
        assert_eq!(
            doc.snapshot_rebuilds(),
            rebuilds_before,
            "read-only accessors triggered zero snapshot rebuilds"
        );
        assert!(doc.snapshot_ref().is_none(), "still no snapshot built");

        // the cached rows match a fresh evaluation (which does rebuild)
        let fresh = doc.xpath("//item").unwrap();
        assert_eq!(doc.cached_rows(q).unwrap(), fresh.as_slice());
        assert_eq!(doc.snapshot_rebuilds(), rebuilds_before + 1);

        // stale cache (script path) makes the read-only view refuse
        doc.apply(&Script::generate(ScriptKind::Random, 5, doc.tree().len(), 2))
            .unwrap();
        assert!(doc.cached_rows(q).is_none(), "stale cache is not served");
        assert!(doc.cached_strings_ref(q).is_none());
        // unregistered ids are None, not empty slices
        assert!(doc.query_cached(q).is_ok(), "mut path refreshes");
        assert!(doc.cached_rows(q + 99).is_none());
    }

    #[test]
    fn xpath_parse_errors_surface_as_document_errors() {
        let tree = docs::book();
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        let err = doc.xpath("//[broken").unwrap_err();
        assert!(matches!(err, DocumentError::XPath(_)), "{err}");
    }
}
