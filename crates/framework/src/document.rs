//! The unified `Document` facade.
//!
//! The crates expose the full pipeline as separate entry points —
//! `EncodedDocument::encode`, `parse_xpath` + `XPathExpr::evaluate`,
//! `run_script`, `verify`, `reconstruct` — each with its own state to
//! thread. [`Document`] bundles them behind one handle:
//!
//! ```
//! use xupd_framework::Document;
//! use xupd_schemes::prefix::qed::Qed;
//! use xupd_workloads::{docs, Script, ScriptKind};
//!
//! let tree = docs::book();
//! let mut doc = Document::encode(Qed::new(), &tree).unwrap();
//! let hits = doc.xpath("//title").unwrap();
//! assert_eq!(hits.len(), 1);
//! let script = Script::generate(ScriptKind::Random, 20, doc.tree().len(), 9);
//! doc.apply(&script).unwrap();
//! assert!(doc.verify().unwrap().is_sound());
//! let rebuilt = doc.reconstruct().unwrap();
//! assert_eq!(rebuilt.len(), doc.tree().len());
//! ```
//!
//! The document owns a live [`XmlTree`] plus the scheme and its
//! labelling, updated incrementally by [`Document::apply`]. Query-side
//! calls ([`Document::xpath`], [`Document::reconstruct`],
//! [`Document::encoded`]) run over an encoded snapshot of the current
//! tree that is built lazily and invalidated by every update — queries
//! between two updates share one snapshot.

use crate::driver::{run_script, DriveStats};
use crate::mutations::{self, MutationLog};
use crate::verify::{verify, VerifyOutcome};
use std::fmt;
use xupd_encoding::{parse_xpath, EncodedDocument, XPathError};
use xupd_labelcore::{Labeling, LabelingScheme};
use xupd_workloads::Script;
use xupd_xmldom::{TreeError, XmlTree};

/// Random node pairs sampled by [`Document::verify`] for each relation.
const VERIFY_SAMPLE_PAIRS: usize = 300;
/// RNG seed for [`Document::verify`] sampling — fixed so facade
/// verification is reproducible.
const VERIFY_SEED: u64 = 0xFACADE;

/// Any error a facade operation can surface: a tree/labelling error or
/// an XPath parse error.
#[derive(Debug)]
pub enum DocumentError {
    /// Tree or labelling failure.
    Tree(TreeError),
    /// XPath expression did not parse.
    XPath(XPathError),
}

impl fmt::Display for DocumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocumentError::Tree(e) => write!(f, "{e}"),
            DocumentError::XPath(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DocumentError {}

impl From<TreeError> for DocumentError {
    fn from(e: TreeError) -> Self {
        DocumentError::Tree(e)
    }
}

impl From<XPathError> for DocumentError {
    fn from(e: XPathError) -> Self {
        DocumentError::XPath(e)
    }
}

/// A labelled XML document under one scheme: live tree + labelling for
/// updates and verification, lazily encoded snapshot for queries.
pub struct Document<S: LabelingScheme + Clone + 'static> {
    tree: XmlTree,
    scheme: S,
    labeling: Labeling<S::Label>,
    snapshot: Option<EncodedDocument<S>>,
    /// How many times the lazy query snapshot has been (re)built — one
    /// per first query after an update, however many ops the update
    /// batched. Observable for the once-per-batch invalidation contract.
    snapshot_rebuilds: u64,
}

impl<S: LabelingScheme + Clone + 'static> Document<S> {
    /// Label a copy of `tree` under `scheme`.
    pub fn encode(mut scheme: S, tree: &XmlTree) -> Result<Self, TreeError> {
        let tree = tree.clone();
        let labeling = scheme.label_tree(&tree)?;
        Ok(Document {
            tree,
            scheme,
            labeling,
            snapshot: None,
            snapshot_rebuilds: 0,
        })
    }

    /// The live tree.
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// The scheme instance.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The live labelling.
    pub fn labeling(&self) -> &Labeling<S::Label> {
        &self.labeling
    }

    /// The encoded snapshot of the current tree, building it on first
    /// use after an update. Row indices returned by [`Document::xpath`]
    /// address this document.
    pub fn encoded(&mut self) -> Result<&EncodedDocument<S>, TreeError> {
        match self.snapshot {
            Some(ref enc) => Ok(enc),
            None => {
                let enc = EncodedDocument::encode(self.scheme.clone(), &self.tree)?;
                self.snapshot_rebuilds += 1;
                Ok(self.snapshot.insert(enc))
            }
        }
    }

    /// Evaluate an XPath expression against the current tree. Returns
    /// matching row indices into [`Document::encoded`], in document
    /// order.
    pub fn xpath(&mut self, expr: &str) -> Result<Vec<usize>, DocumentError> {
        let expr = parse_xpath(expr)?;
        Ok(expr.evaluate(self.encoded()?))
    }

    /// Replay an update script against the live tree through the
    /// scheme's insertion/deletion path, invalidating the query
    /// snapshot.
    pub fn apply(&mut self, script: &Script) -> Result<DriveStats, TreeError> {
        self.snapshot = None;
        run_script(&mut self.tree, &mut self.scheme, &mut self.labeling, script)
    }

    /// Apply a [`MutationLog`] atomically against the live tree (see
    /// [`mutations::apply_log`]): validated up front, all-or-nothing on
    /// failure. The query snapshot is invalidated exactly **once** per
    /// applied batch — and not at all when the batch is rejected, since
    /// a rejected batch changes nothing.
    pub fn apply_log(&mut self, log: &MutationLog) -> Result<DriveStats, TreeError> {
        let stats = mutations::apply_log(&mut self.tree, &mut self.scheme, &mut self.labeling, log)?;
        self.snapshot = None;
        Ok(stats)
    }

    /// How many times the lazy query snapshot has been (re)built.
    pub fn snapshot_rebuilds(&self) -> u64 {
        self.snapshot_rebuilds
    }

    /// Verify the live labelling against tree ground truth (document
    /// order, duplicates, sampled relation and level answers).
    pub fn verify(&self) -> Result<VerifyOutcome, TreeError> {
        verify(
            &self.tree,
            &self.scheme,
            &self.labeling,
            VERIFY_SAMPLE_PAIRS,
            VERIFY_SEED,
        )
    }

    /// Rebuild an [`XmlTree`] from the encoded snapshot alone — the
    /// round-trip the paper's reconstruction property asks for.
    pub fn reconstruct(&mut self) -> Result<XmlTree, TreeError> {
        let enc = self.encoded()?;
        xupd_encoding::reconstruct::reconstruct(enc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::{docs, Script, ScriptKind};

    #[test]
    fn facade_round_trip_queries_updates_and_verifies() {
        let tree = docs::xmark_like(41, 80);
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        let before = doc.xpath("//item").unwrap();
        assert!(!before.is_empty());

        let script = Script::generate(ScriptKind::Random, 40, doc.tree().len(), 5);
        let stats = doc.apply(&script).unwrap();
        assert_eq!(stats.inserts, 40);
        assert!(doc.verify().unwrap().is_sound());

        // snapshot rebuilt after the update: the new nodes are visible
        let rebuilt = doc.reconstruct().unwrap();
        assert_eq!(rebuilt.len(), doc.tree().len());
    }

    #[test]
    fn snapshot_is_reused_between_updates() {
        let tree = docs::book();
        let mut doc = Document::encode(DeweyId::new(), &tree).unwrap();
        let a = doc.encoded().unwrap() as *const _;
        doc.xpath("//title").unwrap();
        let b = doc.encoded().unwrap() as *const _;
        assert_eq!(a, b, "no re-encode without an update");
        doc.apply(&Script::generate(ScriptKind::AppendOnly, 3, tree.len(), 1))
            .unwrap();
        let c = doc.encoded().unwrap() as *const _;
        assert!(doc.tree().len() > tree.len());
        let _ = c; // rebuilt lazily; contents now include the appended nodes
        assert_eq!(doc.encoded().unwrap().len(), doc.tree().len());
    }

    #[test]
    fn batch_apply_invalidates_snapshot_exactly_once() {
        use crate::mutations::{batch_of, Mutation, MutationLog, NodeRef};
        use xupd_xmldom::NodeId;

        let tree = docs::random_tree(3, 60);
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        doc.xpath("//e1").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "initial lazy build");

        // a 100-op batch costs exactly one rebuild, observed only when
        // the next query forces the lazy snapshot
        let script = Script::generate(ScriptKind::Random, 100, tree.len(), 8);
        let log = batch_of(&script, doc.tree()).unwrap();
        assert!(log.len() >= 90, "most ops survive the skip rules");
        doc.apply_log(&log).unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 1, "invalidation alone is free");
        doc.xpath("//e1").unwrap();
        doc.xpath("//e2").unwrap();
        doc.reconstruct().unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 2, "one rebuild per batch");

        // a rejected batch changes nothing and keeps the snapshot
        let bad = MutationLog::from(vec![Mutation::Delete {
            target: NodeRef::Node(NodeId::from_index(doc.tree().id_bound() + 9)),
        }]);
        doc.apply_log(&bad).unwrap_err();
        doc.xpath("//e1").unwrap();
        assert_eq!(doc.snapshot_rebuilds(), 2, "rejected batch is free too");
    }

    #[test]
    fn xpath_parse_errors_surface_as_document_errors() {
        let tree = docs::book();
        let mut doc = Document::encode(Qed::new(), &tree).unwrap();
        let err = doc.xpath("//[broken").unwrap_err();
        assert!(matches!(err, DocumentError::XPath(_)), "{err}");
    }
}
