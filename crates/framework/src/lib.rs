//! # xupd-framework — the paper's evaluation framework, made executable
//!
//! *Desirable Properties for XML Update Mechanisms* contributes "a
//! template of properties that are representative of the characteristics
//! of a good dynamic labelling scheme" (§1.1) and applies it as the
//! Figure 7 evaluation matrix. This crate turns that template into
//! executable machinery:
//!
//! * [`driver`] — replays [`xupd_workloads::Script`]s against any
//!   [`xupd_labelcore::LabelingScheme`], collecting relabel / overflow /
//!   size evidence;
//! * [`verify`] — invariant verification: document order, label
//!   uniqueness, relation and level correctness against tree ground
//!   truth;
//! * [`checkers`] — one empirical checker per §5.1 property, combined
//!   into a measured compliance row per scheme;
//! * [`orthogonal`] — a live demonstration of the *Orthogonal* property:
//!   a containment host parameterised by any order-code algebra;
//! * [`matrix`] — the declared Figure 7 matrix (transcribed from the
//!   paper) and the measured matrix, with rendering;
//! * [`report`] — declared-vs-measured agreement reporting (the
//!   reproduction's headline output);
//! * [`document`] — the unified [`Document`] facade over encode /
//!   query / update / verify / reconstruct;
//! * [`mutations`] — the batched, atomic, replayable [`MutationLog`]
//!   update API: validation before any state change, all-or-nothing
//!   application, a deterministic journaling codec, and log inversion
//!   (undo/redo for free);
//! * [`analysis`] — the static analyzer over validated logs: per-op
//!   read/write footprints, a dependency/conflict graph with a named
//!   taxonomy, and certificates (no-op detection, coalescing, a
//!   canonical reorder, independent sub-log partitioning) consumed by
//!   the batch optimizer and the parallel shard fan-out;
//! * [`querycache`] — incremental XPath result maintenance: registered
//!   queries are classified per batch (unaffected / repairable / dirty)
//!   by intersecting the analyzer's write footprint with each query's
//!   static access pattern, so cached result sets are kept, delta-
//!   repaired or rebuilt — never discarded wholesale.
//!
//! The checker battery fans out per scheme on the `xupd-exec` scoped
//! pool (schemes are independent); results and renders are identical at
//! any `XUPD_THREADS` setting.

pub mod analysis;
pub mod checkers;
pub mod document;
pub mod driver;
pub mod matrix;
pub mod mutations;
pub mod orthogonal;
pub mod querycache;
pub mod report;
pub mod verify;

pub use analysis::{
    analyze, apply_plan_coalesced_dyn, apply_plan_dyn, apply_plan_with_dyn, commutes, conflicts,
    op_pair_verdict, par_apply_independent, AnalyzedPlan, ApplyOptions, ConflictKind, Edge,
    EdgeKind, Extent, GapKey, GapSlot, OpFootprint, PairVerdict, PointRef, ShardOutcome,
    MUTATOR_FOOTPRINTS,
};
pub use checkers::{measure_scheme, measure_session, Evidence, Measured};
pub use driver::ElementPool;
pub use mutations::{
    apply_log, apply_log_dyn, apply_log_dyn_with_pool, batch_of, deserialize, invert, serialize,
    validate, LogBindings, LogId, Mutation, MutationLog, NodeRef, Place,
};
pub use document::{Document, DocumentError};
pub use querycache::{BatchImpact, CacheStats, QueryCache, QueryClass, QueryId};
pub use matrix::{
    declared_figure7, measure_all, measure_all_threads, measure_entries_threads, measure_figure7,
    measure_figure7_threads, EvaluationMatrix, MatrixRow,
};
pub use report::Figure7Report;
