//! Batched, atomic, replayable tree edits: the `MutationLog` API.
//!
//! The paper evaluates update mechanisms one operation at a time, but
//! every desirable property it names — determinism of relabelling,
//! bounded update cost, reconstructability — gets cheaper and easier to
//! check when edits are grouped into a **validated, atomic batch**:
//!
//! * [`validate`] rejects ill-formed logs (dangling ids, cycles,
//!   conflicting writes) *before* any state changes;
//! * [`apply_log`] / [`apply_log_dyn`] apply a log with all-or-nothing
//!   semantics — a failing op rolls the tree *and* the labelling session
//!   back to the pre-batch snapshot;
//! * [`serialize`] / [`deserialize`] give a compact deterministic byte
//!   format for crash-recovery journaling;
//! * [`invert`] produces the undo log, giving undo/redo for free.
//!
//! The per-op script driver ([`crate::driver::run_script_dyn`]) is a
//! consumer of this module: each script op becomes a one-op batch, so
//! the historical op semantics (and the `results/*` goldens) are defined
//! by exactly the same application code as full batches.

use crate::driver::{apply_insert_dyn, DriveStats, ElementPool, CHECKPOINT_EVERY};
use std::collections::{BTreeMap, BTreeSet};
use xupd_labelcore::{DynScheme, Labeling, LabelingScheme, SessionMut};
use xupd_workloads::{Script, ScriptOp};
use xupd_xmldom::{NodeId, NodeKind, TreeError, XmlTree};

/// A log-local id for a node the batch itself creates. Shares no
/// namespace with [`NodeId`]: later mutations in the same batch refer to
/// freshly created nodes as [`NodeRef::New`]`(LogId)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogId(pub u32);

/// How a mutation names a node: either a node that exists before the
/// batch runs, or one the batch creates under a [`LogId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// A pre-existing node.
    Node(NodeId),
    /// A node created earlier in the same batch.
    New(LogId),
}

/// Where a created or moved node lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// First child of the referenced node.
    FirstChildOf(NodeRef),
    /// Last child of the referenced node.
    LastChildOf(NodeRef),
    /// Immediately before the referenced sibling.
    Before(NodeRef),
    /// Immediately after the referenced sibling.
    After(NodeRef),
}

impl Place {
    /// The node the place is anchored on (parent or reference sibling).
    pub fn anchor(self) -> NodeRef {
        match self {
            Place::FirstChildOf(r) | Place::LastChildOf(r) | Place::Before(r) | Place::After(r) => {
                r
            }
        }
    }
}

/// One edit in a [`MutationLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Create a fresh element named `name` at `place`, bound to `id`.
    CreateElement {
        /// Log-local id later mutations use to refer to the new node.
        id: LogId,
        /// Element name.
        name: String,
        /// Landing position.
        place: Place,
    },
    /// Create a fresh node of arbitrary (non-document) `kind` at
    /// `place`. This is the general form [`invert`] needs to revive
    /// deleted text/attribute/comment/PI nodes.
    CreateNode {
        /// Log-local id later mutations use to refer to the new node.
        id: LogId,
        /// The node kind (must not be [`NodeKind::Document`]).
        kind: NodeKind,
        /// Landing position.
        place: Place,
    },
    /// Overwrite the value of a text node.
    SetText {
        /// The text node to rewrite.
        target: NodeRef,
        /// New value.
        text: String,
    },
    /// Delete `target`'s subtree and put a fresh element named `name`
    /// (bound to `id`) in its place.
    Replace {
        /// The subtree to replace.
        target: NodeRef,
        /// Log-local id of the replacement element.
        id: LogId,
        /// Replacement element name.
        name: String,
    },
    /// Delete `target`'s subtree.
    Delete {
        /// The subtree root to delete.
        target: NodeRef,
    },
    /// Append a run of fresh elements, all named `name`, as the last
    /// children of `parent`, bound to `ids` in order.
    AppendChildren {
        /// The parent receiving the run.
        parent: NodeRef,
        /// Log-local ids of the new children, in sibling order.
        ids: Vec<LogId>,
        /// Element name shared by the run.
        name: String,
    },
    /// Detach `target`'s subtree and re-attach it at `place`.
    MoveSubtree {
        /// The subtree root to move.
        target: NodeRef,
        /// Landing position.
        place: Place,
    },
}

/// An ordered batch of [`Mutation`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationLog {
    ops: Vec<Mutation>,
}

impl MutationLog {
    /// An empty log.
    pub fn new() -> Self {
        MutationLog::default()
    }

    /// Append one mutation.
    pub fn push(&mut self, m: Mutation) {
        self.ops.push(m);
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the log holds no mutation.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop all mutations, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The mutations in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Mutation> {
        self.ops.iter()
    }
}

impl From<Vec<Mutation>> for MutationLog {
    fn from(ops: Vec<Mutation>) -> Self {
        MutationLog { ops }
    }
}

impl<'a> IntoIterator for &'a MutationLog {
    type Item = &'a Mutation;
    type IntoIter = std::slice::Iter<'a, Mutation>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// [`LogId`] → [`NodeId`] bindings accumulated while a batch runs.
#[derive(Debug, Clone, Default)]
pub struct LogBindings {
    slots: Vec<Option<NodeId>>,
}

impl LogBindings {
    /// Forget all bindings (keeps the allocation).
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Record that `id` was created as `node`.
    pub(crate) fn bind(&mut self, id: LogId, node: NodeId) -> Result<(), TreeError> {
        let i = id.0 as usize;
        if self.slots.len() <= i {
            self.slots.resize(i + 1, None);
        }
        if self.slots[i].is_some() {
            return Err(TreeError::DuplicateCreate(id.0));
        }
        self.slots[i] = Some(node);
        Ok(())
    }

    /// The node bound to `id`, or an invariant error when unbound.
    pub fn node(&self, id: LogId) -> Result<NodeId, TreeError> {
        self.slots
            .get(id.0 as usize)
            .copied()
            .flatten()
            .ok_or_else(|| TreeError::Invariant(format!("log id #{} is unbound", id.0)))
    }

    /// Resolve a reference to a concrete node id.
    pub(crate) fn resolve(&self, r: NodeRef) -> Result<NodeId, TreeError> {
        match r {
            NodeRef::Node(n) => Ok(n),
            NodeRef::New(l) => self.node(l),
        }
    }

    /// [`LogBindings::resolve`], additionally requiring the node to be
    /// alive in `tree`.
    pub(crate) fn resolve_live(&self, tree: &XmlTree, r: NodeRef) -> Result<NodeId, TreeError> {
        let n = self.resolve(r)?;
        if !tree.is_alive(n) {
            return Err(TreeError::DanglingNodeId(n));
        }
        Ok(n)
    }
}

/// Attach the (detached) `node` at `place`.
fn attach(
    tree: &mut XmlTree,
    binds: &LogBindings,
    node: NodeId,
    place: Place,
) -> Result<(), TreeError> {
    match place {
        Place::FirstChildOf(r) => {
            let p = binds.resolve_live(tree, r)?;
            tree.prepend_child(p, node)
        }
        Place::LastChildOf(r) => {
            let p = binds.resolve_live(tree, r)?;
            tree.append_child(p, node)
        }
        Place::Before(r) => {
            let s = binds.resolve_live(tree, r)?;
            tree.insert_before(s, node)
        }
        Place::After(r) => {
            let s = binds.resolve_live(tree, r)?;
            tree.insert_after(s, node)
        }
    }
}

/// Register one freshly attached node with the pool and the labelling
/// session — exactly the order the per-op driver has always used
/// (pool first, then the scheme's insertion path).
fn register_insert<'o>(
    tree: &XmlTree,
    session: Option<&mut (dyn DynScheme + 'o)>,
    pool: Option<&mut ElementPool>,
    node: NodeId,
    stats: &mut DriveStats,
) -> Result<(), TreeError> {
    if let Some(p) = pool {
        if tree.kind(node).is_element() {
            p.insert_new(tree, node);
        }
    }
    match session {
        Some(s) => apply_insert_dyn(tree, s, node, stats),
        None => {
            stats.inserts += 1;
            Ok(())
        }
    }
}

/// Create, attach, bind and register one fresh node.
fn create_one<'o>(
    tree: &mut XmlTree,
    session: Option<&mut (dyn DynScheme + 'o)>,
    pool: Option<&mut ElementPool>,
    binds: &mut LogBindings,
    id: LogId,
    kind: NodeKind,
    place: Place,
    stats: &mut DriveStats,
) -> Result<NodeId, TreeError> {
    let node = tree.create(kind);
    attach(tree, binds, node, place)?;
    binds.bind(id, node)?;
    register_insert(tree, session, pool, node, stats)?;
    Ok(node)
}

/// Drop labels, pool entries and structure for `target`'s subtree.
fn consume_subtree<'o>(
    tree: &mut XmlTree,
    session: Option<&mut (dyn DynScheme + 'o)>,
    pool: Option<&mut ElementPool>,
    target: NodeId,
    stats: &mut DriveStats,
) -> Result<(), TreeError> {
    if let Some(s) = session {
        s.on_delete(tree, target);
    }
    if let Some(p) = pool {
        if tree.kind(target).is_element() {
            p.remove_subtree(tree, target);
        }
    }
    tree.remove_subtree(target)?;
    stats.deletes += 1;
    Ok(())
}

/// Apply one mutation against the tree, optionally threading a labelling
/// session (None = structural simulation, as [`invert`] uses) and an
/// incrementally maintained element pool (Some only on the per-op driver
/// path; batches rebuild the pool once at the end instead).
pub(crate) fn apply_mutation_dyn<'o>(
    tree: &mut XmlTree,
    mut session: Option<&mut (dyn DynScheme + 'o)>,
    mut pool: Option<&mut ElementPool>,
    binds: &mut LogBindings,
    m: &Mutation,
    stats: &mut DriveStats,
) -> Result<(), TreeError> {
    match m {
        Mutation::CreateElement { id, name, place } => {
            create_one(
                tree,
                session,
                pool,
                binds,
                *id,
                NodeKind::element(name.clone()),
                *place,
                stats,
            )?;
        }
        Mutation::CreateNode { id, kind, place } => {
            if matches!(kind, NodeKind::Document) {
                return Err(TreeError::Invariant(
                    "a batch cannot create a document node".to_string(),
                ));
            }
            create_one(tree, session, pool, binds, *id, kind.clone(), *place, stats)?;
        }
        Mutation::SetText { target, text } => {
            let t = binds.resolve_live(tree, *target)?;
            match tree.kind_mut(t) {
                NodeKind::Text { value } => {
                    *value = text.clone();
                }
                _ => {
                    return Err(TreeError::Invariant(format!(
                        "SetText target {t} is not a text node"
                    )))
                }
            }
        }
        Mutation::Replace { target, id, name } => {
            let t = binds.resolve_live(tree, *target)?;
            let prev = tree.prev_sibling(t);
            let parent = tree.parent(t).ok_or(TreeError::RootImmutable)?;
            consume_subtree(tree, session.as_deref_mut(), pool.as_deref_mut(), t, stats)?;
            let node = tree.create(NodeKind::element(name.clone()));
            match prev {
                Some(p) => tree.insert_after(p, node)?,
                None => tree.prepend_child(parent, node)?,
            }
            binds.bind(*id, node)?;
            register_insert(tree, session, pool, node, stats)?;
        }
        Mutation::Delete { target } => {
            let t = binds.resolve_live(tree, *target)?;
            consume_subtree(tree, session, pool, t, stats)?;
        }
        Mutation::AppendChildren { parent, ids, name } => {
            let p = binds.resolve_live(tree, *parent)?;
            for id in ids {
                let node = tree.create(NodeKind::element(name.clone()));
                tree.append_child(p, node)?;
                binds.bind(*id, node)?;
                register_insert(
                    tree,
                    session.as_deref_mut(),
                    pool.as_deref_mut(),
                    node,
                    stats,
                )?;
            }
        }
        Mutation::MoveSubtree { target, place } => {
            let t = binds.resolve_live(tree, *target)?;
            if let Some(s) = session.as_deref_mut() {
                s.on_delete(tree, t);
            }
            if let Some(p) = pool.as_deref_mut() {
                if tree.kind(t).is_element() {
                    p.remove_subtree(tree, t);
                }
            }
            tree.detach(t)?;
            attach(tree, binds, t, *place)?;
            let moved: Vec<NodeId> = tree.preorder_from(t).collect();
            for node in moved {
                if let Some(p) = pool.as_deref_mut() {
                    if tree.kind(node).is_element() {
                        p.insert_new(tree, node);
                    }
                }
                match session.as_deref_mut() {
                    Some(s) => apply_insert_dyn(tree, s, node, stats)?,
                    None => stats.inserts += 1,
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Validation: reject ill-formed logs before any state changes.
// ---------------------------------------------------------------------

/// One node's identity in the validator's shadow simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RefKey {
    /// Pre-existing node, by arena index.
    Node(u32),
    /// Batch-created node, by log id.
    New(u32),
}

fn ref_key(r: NodeRef) -> RefKey {
    match r {
        NodeRef::Node(n) => RefKey::Node(n.index() as u32),
        NodeRef::New(l) => RefKey::New(l.0),
    }
}

/// Shadow state the validator threads through the log: which log ids
/// exist (and whether they denote text nodes), which nodes the batch has
/// consumed, which text nodes it has written, and where creates/moves
/// re-parented things — all without touching the real tree.
struct Shadow<'t> {
    tree: &'t XmlTree,
    /// log id → the created node is a text node.
    created: BTreeMap<u32, bool>,
    deleted: BTreeSet<RefKey>,
    text_written: BTreeSet<RefKey>,
    parent_override: BTreeMap<RefKey, RefKey>,
}

impl Shadow<'_> {
    fn parent(&self, k: RefKey) -> Option<RefKey> {
        if let Some(&p) = self.parent_override.get(&k) {
            return Some(p);
        }
        match k {
            RefKey::Node(i) => self
                .tree
                .parent(NodeId::from_index(i as usize))
                .map(|p| RefKey::Node(p.index() as u32)),
            RefKey::New(_) => None,
        }
    }

    /// Has the batch already deleted/replaced `k` or a shadow ancestor?
    fn consumed(&self, k: RefKey) -> bool {
        let mut cur = Some(k);
        while let Some(c) = cur {
            if self.deleted.contains(&c) {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    fn check_ref(&self, r: NodeRef) -> Result<(), TreeError> {
        match r {
            NodeRef::Node(n) => {
                if !self.tree.is_alive(n) {
                    return Err(TreeError::DanglingNodeId(n));
                }
                if self.consumed(RefKey::Node(n.index() as u32)) {
                    return Err(TreeError::ConflictingWrite(n));
                }
            }
            NodeRef::New(l) => {
                if !self.created.contains_key(&l.0) {
                    return Err(TreeError::Invariant(format!(
                        "log id #{} referenced before its creation",
                        l.0
                    )));
                }
                if self.consumed(RefKey::New(l.0)) {
                    return Err(TreeError::Invariant(format!(
                        "log id #{} was already consumed by the batch",
                        l.0
                    )));
                }
            }
        }
        Ok(())
    }

    /// The shadow parent a node placed at `place` would get.
    fn place_parent(&self, place: Place) -> Result<RefKey, TreeError> {
        match place {
            Place::FirstChildOf(r) | Place::LastChildOf(r) => {
                self.check_ref(r)?;
                Ok(ref_key(r))
            }
            Place::Before(r) | Place::After(r) => {
                self.check_ref(r)?;
                match self.parent(ref_key(r)) {
                    Some(p) => Ok(p),
                    None => match r {
                        NodeRef::Node(n) if n == self.tree.root() => Err(TreeError::RootImmutable),
                        NodeRef::Node(n) => Err(TreeError::NoParent(n)),
                        NodeRef::New(l) => Err(TreeError::Invariant(format!(
                            "log id #{} has no parent to anchor a sibling insert",
                            l.0
                        ))),
                    },
                }
            }
        }
    }

    fn register_create(&mut self, id: LogId, is_text: bool, place: Place) -> Result<(), TreeError> {
        if self.created.contains_key(&id.0) {
            return Err(TreeError::DuplicateCreate(id.0));
        }
        let pk = self.place_parent(place)?;
        self.created.insert(id.0, is_text);
        self.parent_override.insert(RefKey::New(id.0), pk);
        Ok(())
    }
}

/// Check `log` against `tree` without changing anything. Catches:
/// dangling [`NodeId`]s, forward/unknown [`LogId`] references, duplicate
/// creates ([`TreeError::DuplicateCreate`]), writes to nodes the batch
/// already consumed ([`TreeError::ConflictingWrite`]), double text
/// writes, root deletion/movement, document-node creation, and moves
/// that would cycle a subtree into itself ([`TreeError::WouldCycle`]) —
/// including cycles only visible through the batch's own re-parenting.
pub fn validate(log: &MutationLog, tree: &XmlTree) -> Result<(), TreeError> {
    let mut sh = Shadow {
        tree,
        created: BTreeMap::new(),
        deleted: BTreeSet::new(),
        text_written: BTreeSet::new(),
        parent_override: BTreeMap::new(),
    };
    for m in log.iter() {
        match m {
            Mutation::CreateElement { id, place, .. } => {
                sh.register_create(*id, false, *place)?;
            }
            Mutation::CreateNode { id, kind, place } => {
                if matches!(kind, NodeKind::Document) {
                    return Err(TreeError::Invariant(
                        "a batch cannot create a document node".to_string(),
                    ));
                }
                sh.register_create(*id, matches!(kind, NodeKind::Text { .. }), *place)?;
            }
            Mutation::SetText { target, .. } => {
                sh.check_ref(*target)?;
                let is_text = match *target {
                    NodeRef::Node(n) => matches!(tree.kind(n), NodeKind::Text { .. }),
                    NodeRef::New(l) => sh.created.get(&l.0).copied().unwrap_or(false),
                };
                if !is_text {
                    return Err(TreeError::Invariant(
                        "SetText target is not a text node".to_string(),
                    ));
                }
                if !sh.text_written.insert(ref_key(*target)) {
                    return Err(match *target {
                        NodeRef::Node(n) => TreeError::ConflictingWrite(n),
                        NodeRef::New(l) => TreeError::Invariant(format!(
                            "log id #{} receives two text writes",
                            l.0
                        )),
                    });
                }
            }
            Mutation::Replace { target, id, .. } => {
                sh.check_ref(*target)?;
                let k = ref_key(*target);
                let pk = match sh.parent(k) {
                    Some(p) => p,
                    None => {
                        return Err(match *target {
                            NodeRef::Node(n) if n == tree.root() => TreeError::RootImmutable,
                            NodeRef::Node(n) => TreeError::NoParent(n),
                            NodeRef::New(l) => TreeError::Invariant(format!(
                                "log id #{} has no parent; nothing to replace into",
                                l.0
                            )),
                        })
                    }
                };
                if sh.created.contains_key(&id.0) {
                    return Err(TreeError::DuplicateCreate(id.0));
                }
                sh.deleted.insert(k);
                sh.created.insert(id.0, false);
                sh.parent_override.insert(RefKey::New(id.0), pk);
            }
            Mutation::Delete { target } => {
                sh.check_ref(*target)?;
                if let NodeRef::Node(n) = *target {
                    if n == tree.root() {
                        return Err(TreeError::RootImmutable);
                    }
                }
                sh.deleted.insert(ref_key(*target));
            }
            Mutation::AppendChildren { parent, ids, .. } => {
                sh.check_ref(*parent)?;
                let pk = ref_key(*parent);
                for id in ids {
                    if sh.created.contains_key(&id.0) {
                        return Err(TreeError::DuplicateCreate(id.0));
                    }
                    sh.created.insert(id.0, false);
                    sh.parent_override.insert(RefKey::New(id.0), pk);
                }
            }
            Mutation::MoveSubtree { target, place } => {
                sh.check_ref(*target)?;
                if let NodeRef::Node(n) = *target {
                    if n == tree.root() {
                        return Err(TreeError::RootImmutable);
                    }
                }
                let tk = ref_key(*target);
                let cycle_err = || match *target {
                    NodeRef::Node(n) => TreeError::WouldCycle(n),
                    NodeRef::New(l) => TreeError::Invariant(format!(
                        "moving log id #{} under itself would create a cycle",
                        l.0
                    )),
                };
                if ref_key(place.anchor()) == tk {
                    return Err(cycle_err());
                }
                let pk = sh.place_parent(*place)?;
                let mut cur = Some(pk);
                while let Some(c) = cur {
                    if c == tk {
                        return Err(cycle_err());
                    }
                    cur = sh.parent(c);
                }
                sh.parent_override.insert(tk, pk);
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Atomic application.
// ---------------------------------------------------------------------

/// Apply a validated log atomically: all mutations land, or — should any
/// fail mid-batch — the tree and the labelling session are rolled back
/// to the pre-batch snapshot and the error is returned.
///
/// Relabelling still flows through the scheme's ordinary insertion path
/// (that *is* the object under measurement), but batch bookkeeping is
/// amortised: peak-size checkpoints run once per [`CHECKPOINT_EVERY`]
/// mutations and — on the [`apply_log_dyn_with_pool`] path — the element
/// pool is reindexed once per batch instead of once per op.
pub fn apply_log_dyn(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    log: &MutationLog,
) -> Result<DriveStats, TreeError> {
    validate(log, tree)?;
    let tree_snap = tree.clone();
    let sess_snap = session.save_state();
    let mut stats = DriveStats::default();
    let mut binds = LogBindings::default();
    let mut failed = None;
    for (i, m) in log.iter().enumerate() {
        if let Err(e) = apply_mutation_dyn(tree, Some(&mut *session), None, &mut binds, m, &mut stats)
        {
            failed = Some(e);
            break;
        }
        if i % CHECKPOINT_EVERY == 0 {
            stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
        }
    }
    if let Some(e) = failed {
        *tree = tree_snap;
        if !session.restore_state(sess_snap) {
            return Err(TreeError::Invariant(
                "batch rollback: session snapshot was rejected".to_string(),
            ));
        }
        return Err(e);
    }
    stats.peak_label_bits = stats.peak_label_bits.max(session.max_bits());
    stats.end_mean_bits = session.mean_bits();
    stats.end_max_bits = session.max_bits();
    Ok(stats)
}

/// Typed wrapper over [`apply_log_dyn`].
pub fn apply_log<S: LabelingScheme + Clone + 'static>(
    tree: &mut XmlTree,
    scheme: &mut S,
    labeling: &mut Labeling<S::Label>,
    log: &MutationLog,
) -> Result<DriveStats, TreeError> {
    apply_log_dyn(tree, &mut SessionMut::new(scheme, labeling), log)
}

/// [`apply_log_dyn`] for callers that maintain an [`ElementPool`]: on
/// success the pool is reindexed with **one** full scan (the per-batch
/// amortisation); on failure the pool — like the tree and the session —
/// is left exactly as it was before the batch.
pub fn apply_log_dyn_with_pool(
    tree: &mut XmlTree,
    session: &mut dyn DynScheme,
    pool: &mut ElementPool,
    log: &MutationLog,
) -> Result<DriveStats, TreeError> {
    let stats = apply_log_dyn(tree, session, log)?;
    pool.rebuild(tree);
    Ok(stats)
}

// ---------------------------------------------------------------------
// Codec: compact deterministic bytes for crash-recovery journaling.
// ---------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"XLOG";
const VERSION: u8 = 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ref(out: &mut Vec<u8>, r: NodeRef) {
    match r {
        NodeRef::Node(n) => {
            out.push(0);
            put_u32(out, n.index() as u32);
        }
        NodeRef::New(l) => {
            out.push(1);
            put_u32(out, l.0);
        }
    }
}

fn put_place(out: &mut Vec<u8>, p: Place) {
    let (tag, r) = match p {
        Place::FirstChildOf(r) => (0u8, r),
        Place::LastChildOf(r) => (1, r),
        Place::Before(r) => (2, r),
        Place::After(r) => (3, r),
    };
    out.push(tag);
    put_ref(out, r);
}

fn put_kind(out: &mut Vec<u8>, k: &NodeKind) {
    match k {
        NodeKind::Document => out.push(0),
        NodeKind::Element { name } => {
            out.push(1);
            put_str(out, name);
        }
        NodeKind::Attribute { name, value } => {
            out.push(2);
            put_str(out, name);
            put_str(out, value);
        }
        NodeKind::Text { value } => {
            out.push(3);
            put_str(out, value);
        }
        NodeKind::Comment { value } => {
            out.push(4);
            put_str(out, value);
        }
        NodeKind::Pi { target, data } => {
            out.push(5);
            put_str(out, target);
            put_str(out, data);
        }
    }
}

/// Encode a log to its compact deterministic byte form. Same log in,
/// same bytes out — byte equality is log equality.
pub fn serialize(log: &MutationLog) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_u32(&mut out, log.len() as u32);
    for m in log.iter() {
        match m {
            Mutation::CreateElement { id, name, place } => {
                out.push(0);
                put_u32(&mut out, id.0);
                put_str(&mut out, name);
                put_place(&mut out, *place);
            }
            Mutation::CreateNode { id, kind, place } => {
                out.push(1);
                put_u32(&mut out, id.0);
                put_kind(&mut out, kind);
                put_place(&mut out, *place);
            }
            Mutation::SetText { target, text } => {
                out.push(2);
                put_ref(&mut out, *target);
                put_str(&mut out, text);
            }
            Mutation::Replace { target, id, name } => {
                out.push(3);
                put_ref(&mut out, *target);
                put_u32(&mut out, id.0);
                put_str(&mut out, name);
            }
            Mutation::Delete { target } => {
                out.push(4);
                put_ref(&mut out, *target);
            }
            Mutation::AppendChildren { parent, ids, name } => {
                out.push(5);
                put_ref(&mut out, *parent);
                put_u32(&mut out, ids.len() as u32);
                for id in ids {
                    put_u32(&mut out, id.0);
                }
                put_str(&mut out, name);
            }
            Mutation::MoveSubtree { target, place } => {
                out.push(6);
                put_ref(&mut out, *target);
                put_place(&mut out, *place);
            }
        }
    }
    out
}

struct Cursor<'b> {
    buf: &'b [u8],
    at: usize,
}

impl<'b> Cursor<'b> {
    fn err(what: &str) -> TreeError {
        TreeError::Invariant(format!("log codec: {what}"))
    }

    fn u8(&mut self) -> Result<u8, TreeError> {
        let b = *self
            .buf
            .get(self.at)
            .ok_or_else(|| Self::err("truncated byte"))?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, TreeError> {
        let end = self
            .at
            .checked_add(4)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::err("truncated u32"))?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.buf[self.at..end]);
        self.at = end;
        Ok(u32::from_le_bytes(raw))
    }

    fn string(&mut self) -> Result<String, TreeError> {
        let len = self.u32()? as usize;
        let end = self
            .at
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::err("truncated string"))?;
        let s = std::str::from_utf8(&self.buf[self.at..end])
            .map_err(|_| Self::err("string is not UTF-8"))?
            .to_string();
        self.at = end;
        Ok(s)
    }

    fn node_ref(&mut self) -> Result<NodeRef, TreeError> {
        match self.u8()? {
            0 => Ok(NodeRef::Node(NodeId::from_index(self.u32()? as usize))),
            1 => Ok(NodeRef::New(LogId(self.u32()?))),
            t => Err(Self::err(&format!("unknown ref tag {t}"))),
        }
    }

    fn place(&mut self) -> Result<Place, TreeError> {
        let tag = self.u8()?;
        let r = self.node_ref()?;
        match tag {
            0 => Ok(Place::FirstChildOf(r)),
            1 => Ok(Place::LastChildOf(r)),
            2 => Ok(Place::Before(r)),
            3 => Ok(Place::After(r)),
            t => Err(Self::err(&format!("unknown place tag {t}"))),
        }
    }

    fn kind(&mut self) -> Result<NodeKind, TreeError> {
        match self.u8()? {
            0 => Ok(NodeKind::Document),
            1 => Ok(NodeKind::Element {
                name: self.string()?,
            }),
            2 => Ok(NodeKind::Attribute {
                name: self.string()?,
                value: self.string()?,
            }),
            3 => Ok(NodeKind::Text {
                value: self.string()?,
            }),
            4 => Ok(NodeKind::Comment {
                value: self.string()?,
            }),
            5 => Ok(NodeKind::Pi {
                target: self.string()?,
                data: self.string()?,
            }),
            t => Err(Self::err(&format!("unknown kind tag {t}"))),
        }
    }
}

/// Decode bytes produced by [`serialize`]. Malformed input (bad magic,
/// unknown tags, truncation, trailing bytes) yields
/// [`TreeError::Invariant`] and never panics.
pub fn deserialize(bytes: &[u8]) -> Result<MutationLog, TreeError> {
    let mut c = Cursor { buf: bytes, at: 0 };
    for &b in MAGIC {
        if c.u8()? != b {
            return Err(Cursor::err("bad magic"));
        }
    }
    if c.u8()? != VERSION {
        return Err(Cursor::err("unsupported version"));
    }
    let count = c.u32()? as usize;
    let mut log = MutationLog::new();
    for _ in 0..count {
        let m = match c.u8()? {
            0 => Mutation::CreateElement {
                id: LogId(c.u32()?),
                name: c.string()?,
                place: c.place()?,
            },
            1 => Mutation::CreateNode {
                id: LogId(c.u32()?),
                kind: c.kind()?,
                place: c.place()?,
            },
            2 => Mutation::SetText {
                target: c.node_ref()?,
                text: c.string()?,
            },
            3 => Mutation::Replace {
                target: c.node_ref()?,
                id: LogId(c.u32()?),
                name: c.string()?,
            },
            4 => Mutation::Delete {
                target: c.node_ref()?,
            },
            5 => {
                let parent = c.node_ref()?;
                let n = c.u32()? as usize;
                let mut ids = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    ids.push(LogId(c.u32()?));
                }
                Mutation::AppendChildren {
                    parent,
                    ids,
                    name: c.string()?,
                }
            }
            6 => Mutation::MoveSubtree {
                target: c.node_ref()?,
                place: c.place()?,
            },
            t => return Err(Cursor::err(&format!("unknown mutation tag {t}"))),
        };
        log.push(m);
    }
    if c.at != bytes.len() {
        return Err(Cursor::err("trailing bytes"));
    }
    Ok(log)
}

// ---------------------------------------------------------------------
// Inversion: the undo log.
// ---------------------------------------------------------------------

/// Where a (deleted or moved) subtree root originally sat, in pre-edit
/// node-arena indices.
#[derive(Debug, Clone, Copy)]
enum OriginPlace {
    /// Immediately after this sibling.
    After(u32),
    /// First child of this parent.
    FirstUnder(u32),
}

/// Everything needed to revive one deleted subtree.
#[derive(Debug, Clone)]
struct RestoreInfo {
    origin: OriginPlace,
    /// `(arena index, kind at deletion, parent arena index)` in preorder;
    /// the first entry is the subtree root (its parent slot is unused).
    nodes: Vec<(u32, NodeKind, u32)>,
}

/// The forward log's effects, one seed per undoable action, with node
/// ids as they exist in the post-application tree (node ids are assigned
/// deterministically by creation order, so the scratch simulation and
/// the real application agree on them).
#[derive(Debug, Clone)]
enum Seed {
    Created { node: NodeId },
    TextSet { node: NodeId, old: String },
    Deleted { restore: RestoreInfo },
    Replaced { created: NodeId, restore: RestoreInfo },
    Moved { node: NodeId, origin: OriginPlace },
}

fn capture_origin(tree: &XmlTree, t: NodeId) -> Result<OriginPlace, TreeError> {
    match tree.prev_sibling(t) {
        Some(p) => Ok(OriginPlace::After(p.index() as u32)),
        None => Ok(OriginPlace::FirstUnder(
            tree.parent(t).ok_or(TreeError::RootImmutable)?.index() as u32,
        )),
    }
}

fn capture_restore(tree: &XmlTree, t: NodeId) -> Result<RestoreInfo, TreeError> {
    let origin = capture_origin(tree, t)?;
    let mut nodes = Vec::new();
    for n in tree.preorder_from(t) {
        let parent = if n == t {
            0
        } else {
            tree.parent(n).ok_or(TreeError::MissingParent(n))?.index() as u32
        };
        nodes.push((n.index() as u32, tree.kind(n).clone(), parent));
    }
    Ok(RestoreInfo { origin, nodes })
}

/// How the undo log refers to a node of the forward simulation: by its
/// (stable) post-application id, unless the undo log itself revives it —
/// then by the reviving mutation's [`LogId`].
fn undo_ref(ref_of: &BTreeMap<u32, NodeRef>, idx: u32) -> NodeRef {
    ref_of
        .get(&idx)
        .copied()
        .unwrap_or(NodeRef::Node(NodeId::from_index(idx as usize)))
}

fn undo_origin(ref_of: &BTreeMap<u32, NodeRef>, origin: OriginPlace) -> Place {
    match origin {
        OriginPlace::After(p) => Place::After(undo_ref(ref_of, p)),
        OriginPlace::FirstUnder(p) => Place::FirstChildOf(undo_ref(ref_of, p)),
    }
}

/// Emit the mutations reviving one deleted subtree, registering each
/// revived node's fresh [`LogId`] so later (undo-order) mutations can
/// refer to it.
fn emit_recreate(
    undo: &mut MutationLog,
    ref_of: &mut BTreeMap<u32, NodeRef>,
    next_lid: &mut u32,
    restore: &RestoreInfo,
) {
    for (i, (old, kind, parent)) in restore.nodes.iter().enumerate() {
        let lid = LogId(*next_lid);
        *next_lid += 1;
        let place = if i == 0 {
            undo_origin(ref_of, restore.origin)
        } else {
            // preorder + append reproduces the original sibling order
            Place::LastChildOf(undo_ref(ref_of, *parent))
        };
        undo.push(Mutation::CreateNode {
            id: lid,
            kind: kind.clone(),
            place,
        });
        ref_of.insert(*old, NodeRef::New(lid));
    }
}

/// Build the undo log for `log` against `tree` (the tree **before** the
/// log is applied). Applying `log` and then `invert(log, tree)` restores
/// a tree that serialises byte-for-byte to the original; revived nodes
/// get fresh arena ids (ids are never reused), so the undo log names
/// them through its own [`LogId`]s.
pub fn invert(log: &MutationLog, tree: &XmlTree) -> Result<MutationLog, TreeError> {
    validate(log, tree)?;
    let mut scratch = tree.clone();
    let mut binds = LogBindings::default();
    let mut sink = DriveStats::default();
    let mut seeds: Vec<Seed> = Vec::new();
    for m in log.iter() {
        match m {
            Mutation::CreateElement { id, .. } | Mutation::CreateNode { id, .. } => {
                apply_mutation_dyn(&mut scratch, None, None, &mut binds, m, &mut sink)?;
                seeds.push(Seed::Created {
                    node: binds.node(*id)?,
                });
            }
            Mutation::SetText { target, .. } => {
                let t = binds.resolve_live(&scratch, *target)?;
                let old = match scratch.kind(t) {
                    NodeKind::Text { value } => value.clone(),
                    _ => {
                        return Err(TreeError::Invariant(
                            "SetText target is not a text node".to_string(),
                        ))
                    }
                };
                apply_mutation_dyn(&mut scratch, None, None, &mut binds, m, &mut sink)?;
                seeds.push(Seed::TextSet { node: t, old });
            }
            Mutation::Replace { target, id, .. } => {
                let t = binds.resolve_live(&scratch, *target)?;
                let restore = capture_restore(&scratch, t)?;
                apply_mutation_dyn(&mut scratch, None, None, &mut binds, m, &mut sink)?;
                seeds.push(Seed::Replaced {
                    created: binds.node(*id)?,
                    restore,
                });
            }
            Mutation::Delete { target } => {
                let t = binds.resolve_live(&scratch, *target)?;
                let restore = capture_restore(&scratch, t)?;
                apply_mutation_dyn(&mut scratch, None, None, &mut binds, m, &mut sink)?;
                seeds.push(Seed::Deleted { restore });
            }
            Mutation::AppendChildren { ids, .. } => {
                apply_mutation_dyn(&mut scratch, None, None, &mut binds, m, &mut sink)?;
                for id in ids {
                    seeds.push(Seed::Created {
                        node: binds.node(*id)?,
                    });
                }
            }
            Mutation::MoveSubtree { target, .. } => {
                let t = binds.resolve_live(&scratch, *target)?;
                let origin = capture_origin(&scratch, t)?;
                apply_mutation_dyn(&mut scratch, None, None, &mut binds, m, &mut sink)?;
                seeds.push(Seed::Moved { node: t, origin });
            }
        }
    }

    let mut undo = MutationLog::new();
    let mut ref_of: BTreeMap<u32, NodeRef> = BTreeMap::new();
    let mut next_lid = 0u32;
    for seed in seeds.iter().rev() {
        match seed {
            Seed::Created { node } => {
                undo.push(Mutation::Delete {
                    target: undo_ref(&ref_of, node.index() as u32),
                });
            }
            Seed::TextSet { node, old } => {
                undo.push(Mutation::SetText {
                    target: undo_ref(&ref_of, node.index() as u32),
                    text: old.clone(),
                });
            }
            Seed::Deleted { restore } => {
                emit_recreate(&mut undo, &mut ref_of, &mut next_lid, restore);
            }
            Seed::Replaced { created, restore } => {
                undo.push(Mutation::Delete {
                    target: undo_ref(&ref_of, created.index() as u32),
                });
                emit_recreate(&mut undo, &mut ref_of, &mut next_lid, restore);
            }
            Seed::Moved { node, origin } => {
                let place = undo_origin(&ref_of, *origin);
                undo.push(Mutation::MoveSubtree {
                    target: undo_ref(&ref_of, node.index() as u32),
                    place,
                });
            }
        }
    }
    Ok(undo)
}

// ---------------------------------------------------------------------
// Script → batch translation.
// ---------------------------------------------------------------------

/// Translate a whole [`Script`] into **one** [`MutationLog`], replaying
/// the per-op driver's addressing rules (modulo-pool resolution, the
/// insert-before/after root fallbacks, the zigzag pair, the delete skip
/// rules) against a scratch copy of `tree` so every later op addresses
/// the pool state its predecessors left behind — exactly as
/// [`crate::driver::run_script_dyn`] would. Nodes the batch itself
/// creates are referenced as [`NodeRef::New`], numbered in creation
/// order, so [`apply_log`] on the real tree binds them to the same
/// arena ids the per-op driver would have produced.
pub fn batch_of(script: &Script, tree: &XmlTree) -> Result<MutationLog, TreeError> {
    let mut scratch = tree.clone();
    let base = scratch.id_bound();
    let mut pool = ElementPool::build(&scratch);
    let mut binds = LogBindings::default();
    let mut sink = DriveStats::default();
    let mut log = MutationLog::new();
    let mut next_lid = 0u32;
    let mut zig: Option<(NodeId, NodeId)> = None;
    let mut zig_step = 0usize;

    let node_ref = |id: NodeId| -> NodeRef {
        if id.index() < base {
            NodeRef::Node(id)
        } else {
            NodeRef::New(LogId((id.index() - base) as u32))
        }
    };

    // Emit one create + mirror it on the scratch tree; returns the
    // scratch node so zig bookkeeping can track it.
    let create = |log: &mut MutationLog,
                      scratch: &mut XmlTree,
                      pool: &mut ElementPool,
                      binds: &mut LogBindings,
                      sink: &mut DriveStats,
                      next_lid: &mut u32,
                      place: Place|
     -> Result<NodeId, TreeError> {
        let id = LogId(*next_lid);
        *next_lid += 1;
        let m = Mutation::CreateElement {
            id,
            name: "u".to_string(),
            place,
        };
        apply_mutation_dyn(scratch, None, Some(pool), binds, &m, sink)?;
        log.push(m);
        binds.node(id)
    };

    for op in &script.ops {
        if pool.is_empty() {
            break;
        }
        match *op {
            ScriptOp::InsertBefore(i) => {
                let target = pool.resolve(i);
                let place = if scratch.parent(target) == Some(scratch.root())
                    || scratch.parent(target).is_none()
                {
                    Place::FirstChildOf(node_ref(target))
                } else {
                    Place::Before(node_ref(target))
                };
                create(
                    &mut log,
                    &mut scratch,
                    &mut pool,
                    &mut binds,
                    &mut sink,
                    &mut next_lid,
                    place,
                )?;
            }
            ScriptOp::InsertAfter(i) if i == usize::MAX => {
                let (a, b) = match zig {
                    Some((a, b))
                        if scratch.is_alive(a)
                            && scratch.is_alive(b)
                            && scratch.next_sibling(a) == Some(b) =>
                    {
                        (a, b)
                    }
                    _ => {
                        let basis = pool.resolve(pool.len() / 2);
                        let c1 = create(
                            &mut log,
                            &mut scratch,
                            &mut pool,
                            &mut binds,
                            &mut sink,
                            &mut next_lid,
                            Place::LastChildOf(node_ref(basis)),
                        )?;
                        let c2 = create(
                            &mut log,
                            &mut scratch,
                            &mut pool,
                            &mut binds,
                            &mut sink,
                            &mut next_lid,
                            Place::LastChildOf(node_ref(basis)),
                        )?;
                        (c1, c2)
                    }
                };
                let node = create(
                    &mut log,
                    &mut scratch,
                    &mut pool,
                    &mut binds,
                    &mut sink,
                    &mut next_lid,
                    Place::After(node_ref(a)),
                )?;
                zig = Some(if zig_step % 2 == 0 { (a, node) } else { (node, b) });
                zig_step += 1;
            }
            ScriptOp::InsertAfter(i) => {
                let target = pool.resolve(i);
                let place = if scratch.parent(target) == Some(scratch.root())
                    || scratch.parent(target).is_none()
                {
                    Place::LastChildOf(node_ref(target))
                } else {
                    Place::After(node_ref(target))
                };
                create(
                    &mut log,
                    &mut scratch,
                    &mut pool,
                    &mut binds,
                    &mut sink,
                    &mut next_lid,
                    place,
                )?;
            }
            ScriptOp::PrependChild(i) => {
                let place = Place::FirstChildOf(node_ref(pool.resolve(i)));
                create(
                    &mut log,
                    &mut scratch,
                    &mut pool,
                    &mut binds,
                    &mut sink,
                    &mut next_lid,
                    place,
                )?;
            }
            ScriptOp::AppendChild(i) => {
                let place = Place::LastChildOf(node_ref(pool.resolve(i)));
                create(
                    &mut log,
                    &mut scratch,
                    &mut pool,
                    &mut binds,
                    &mut sink,
                    &mut next_lid,
                    place,
                )?;
            }
            ScriptOp::DeleteSubtree(i) => {
                let target = pool.resolve(i);
                if Some(target) == scratch.document_element() || pool.len() <= 2 {
                    continue;
                }
                let m = Mutation::Delete {
                    target: node_ref(target),
                };
                apply_mutation_dyn(&mut scratch, None, Some(&mut pool), &mut binds, &m, &mut sink)?;
                log.push(m);
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_schemes::prefix::dewey::DeweyId;
    use xupd_schemes::prefix::qed::Qed;
    use xupd_workloads::{docs, ScriptKind};
    use xupd_xmldom::serialize_compact;

    fn session_for(tree: &XmlTree) -> (Qed, Labeling<<Qed as LabelingScheme>::Label>) {
        let mut scheme = Qed::new();
        let labeling = scheme.label_tree(tree).expect("labelable");
        (scheme, labeling)
    }

    fn first_named(tree: &XmlTree, name: &str) -> NodeId {
        tree.preorder()
            .find(|&n| tree.kind(n).name() == Some(name))
            .expect("node present")
    }

    #[test]
    fn apply_log_creates_and_binds() {
        let mut tree = docs::book();
        let (mut scheme, mut labeling) = session_for(&tree);
        let book = tree.document_element().expect("book");
        let mut log = MutationLog::new();
        log.push(Mutation::CreateElement {
            id: LogId(0),
            name: "chapter".into(),
            place: Place::LastChildOf(NodeRef::Node(book)),
        });
        log.push(Mutation::AppendChildren {
            parent: NodeRef::New(LogId(0)),
            ids: vec![LogId(1), LogId(2), LogId(3)],
            name: "para".into(),
        });
        let stats = apply_log(&mut tree, &mut scheme, &mut labeling, &log).expect("applies");
        assert_eq!(stats.inserts, 4);
        tree.validate().expect("valid");
        assert_eq!(labeling.len(), tree.len());
        let chapter = first_named(&tree, "chapter");
        assert_eq!(tree.children(chapter).count(), 3);
    }

    #[test]
    fn validator_rejects_dangling_duplicate_and_write_after_delete() {
        let tree = docs::book();
        let title = first_named(&tree, "title");
        let dead = NodeId::from_index(tree.id_bound() + 7);
        let dangling = MutationLog::from(vec![Mutation::Delete {
            target: NodeRef::Node(dead),
        }]);
        assert_eq!(
            validate(&dangling, &tree),
            Err(TreeError::DanglingNodeId(dead))
        );

        let book = tree.document_element().expect("book");
        let dup = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "x".into(),
                place: Place::LastChildOf(NodeRef::Node(book)),
            },
            Mutation::CreateElement {
                id: LogId(0),
                name: "y".into(),
                place: Place::LastChildOf(NodeRef::Node(book)),
            },
        ]);
        assert_eq!(validate(&dup, &tree), Err(TreeError::DuplicateCreate(0)));

        let wad = MutationLog::from(vec![
            Mutation::Delete {
                target: NodeRef::Node(title),
            },
            Mutation::CreateElement {
                id: LogId(0),
                name: "x".into(),
                place: Place::After(NodeRef::Node(title)),
            },
        ]);
        assert_eq!(validate(&wad, &tree), Err(TreeError::ConflictingWrite(title)));
    }

    #[test]
    fn validator_sees_cycles_through_batch_reparenting() {
        let tree = docs::book();
        let book = tree.document_element().expect("book");
        let title = first_named(&tree, "title");
        // move <book> under a fresh node that the batch puts inside
        // <title> — a cycle only visible through the shadow parents
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "trap".into(),
                place: Place::LastChildOf(NodeRef::Node(title)),
            },
            Mutation::MoveSubtree {
                target: NodeRef::Node(book),
                place: Place::LastChildOf(NodeRef::New(LogId(0))),
            },
        ]);
        assert_eq!(validate(&log, &tree), Err(TreeError::WouldCycle(book)));
    }

    #[test]
    fn failing_batch_rolls_everything_back() {
        let mut tree = docs::book();
        let (mut scheme, mut labeling) = session_for(&tree);
        let before_tree = serialize_compact(&tree);
        let before_labels =
            SessionMut::new(&mut scheme, &mut labeling).labels_display();
        let book = tree.document_element().expect("book");
        let title = first_named(&tree, "title");
        // the validator rejects the SetText-on-element up front, so this
        // pins the reject-leaves-untouched half of atomicity; genuine
        // mid-apply failures (and their rollback) are fault-injected per
        // scheme in tests/mutation_log_atomicity.rs
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "x".into(),
                place: Place::LastChildOf(NodeRef::Node(book)),
            },
            Mutation::SetText {
                target: NodeRef::Node(title),
                text: "nope".into(),
            },
        ]);
        let err = apply_log(&mut tree, &mut scheme, &mut labeling, &log)
            .expect_err("title is an element, not text");
        assert!(matches!(err, TreeError::Invariant(_)));
        assert_eq!(serialize_compact(&tree), before_tree, "tree untouched");
        assert_eq!(
            SessionMut::new(&mut scheme, &mut labeling).labels_display(),
            before_labels,
            "labeling untouched"
        );
    }

    #[test]
    fn codec_round_trips_every_variant() {
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "α".into(),
                place: Place::FirstChildOf(NodeRef::Node(NodeId::from_index(3))),
            },
            Mutation::CreateNode {
                id: LogId(1),
                kind: NodeKind::Pi {
                    target: "xmlstyle".into(),
                    data: "href='x'".into(),
                },
                place: Place::Before(NodeRef::New(LogId(0))),
            },
            Mutation::SetText {
                target: NodeRef::Node(NodeId::from_index(9)),
                text: "new text".into(),
            },
            Mutation::Replace {
                target: NodeRef::Node(NodeId::from_index(4)),
                id: LogId(2),
                name: "r".into(),
            },
            Mutation::Delete {
                target: NodeRef::New(LogId(2)),
            },
            Mutation::AppendChildren {
                parent: NodeRef::Node(NodeId::from_index(1)),
                ids: vec![LogId(3), LogId(4)],
                name: "kid".into(),
            },
            Mutation::MoveSubtree {
                target: NodeRef::Node(NodeId::from_index(5)),
                place: Place::After(NodeRef::Node(NodeId::from_index(6))),
            },
        ]);
        let bytes = serialize(&log);
        assert_eq!(deserialize(&bytes).expect("round trip"), log);
        assert!(deserialize(&bytes[..bytes.len() - 1]).is_err(), "truncation");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(deserialize(&trailing).is_err(), "trailing bytes");
        assert!(deserialize(b"NOPE").is_err(), "bad magic");
    }

    #[test]
    fn invert_round_trips_mixed_batches() {
        let mut tree = docs::book();
        let (mut scheme, mut labeling) = session_for(&tree);
        let original = serialize_compact(&tree);
        let book = tree.document_element().expect("book");
        let title = first_named(&tree, "title");
        let publisher = first_named(&tree, "publisher");
        let log = MutationLog::from(vec![
            Mutation::CreateElement {
                id: LogId(0),
                name: "appendix".into(),
                place: Place::LastChildOf(NodeRef::Node(book)),
            },
            Mutation::MoveSubtree {
                target: NodeRef::Node(publisher),
                place: Place::Before(NodeRef::Node(title)),
            },
            Mutation::Delete {
                target: NodeRef::Node(title),
            },
            Mutation::Replace {
                target: NodeRef::Node(publisher),
                id: LogId(1),
                name: "imprint".into(),
            },
        ]);
        let undo = invert(&log, &tree).expect("invertible");
        apply_log(&mut tree, &mut scheme, &mut labeling, &log).expect("forward");
        assert_ne!(serialize_compact(&tree), original);
        apply_log(&mut tree, &mut scheme, &mut labeling, &undo).expect("undo");
        assert_eq!(serialize_compact(&tree), original, "byte-for-byte restore");
        assert_eq!(labeling.len(), tree.len());
    }

    #[test]
    fn batch_of_matches_per_op_driver() {
        for kind in [ScriptKind::Random, ScriptKind::Skewed, ScriptKind::MixedDelete] {
            let base = docs::random_tree(11, 80);
            let script = Script::generate(kind, 120, 80, 13);

            let mut per_op_tree = base.clone();
            let mut scheme_a = DeweyId::new();
            let mut labeling_a = scheme_a.label_tree(&per_op_tree).expect("labelable");
            crate::driver::run_script(&mut per_op_tree, &mut scheme_a, &mut labeling_a, &script)
                .expect("per-op");

            let mut batched_tree = base.clone();
            let mut scheme_b = DeweyId::new();
            let mut labeling_b = scheme_b.label_tree(&batched_tree).expect("labelable");
            let log = batch_of(&script, &batched_tree).expect("translates");
            apply_log(&mut batched_tree, &mut scheme_b, &mut labeling_b, &log)
                .expect("batched");

            assert_eq!(
                serialize_compact(&per_op_tree),
                serialize_compact(&batched_tree),
                "{} trees agree",
                kind.name()
            );
        }
    }
}
