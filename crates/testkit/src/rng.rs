//! Deterministic, seedable PRNG: SplitMix64 seeding a xoshiro256++ core.
//!
//! This is the single randomness source for the whole workspace — every
//! workload generator, verifier and property test draws from it, so a
//! `(seed, draw sequence)` pair pins a run bit-for-bit on every platform.
//! The generator is *not* cryptographic and must never be used for
//! anything security-sensitive; its job is replayable measurement.
//!
//! The surface mirrors the handful of `rand` calls the repo used before
//! going hermetic: [`TestRng::seed_from_u64`], [`TestRng::gen_range`],
//! [`TestRng::gen_bool`], [`TestRng::choose`], [`TestRng::shuffle`].

use std::ops::Range;

/// xoshiro256++ generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

/// One SplitMix64 step: advances `state` and returns the next output.
/// Used to expand a 64-bit seed into the 256-bit xoshiro state, per the
/// reference implementation's seeding recommendation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Expand `seed` through SplitMix64 into a full xoshiro256++ state.
    /// Any seed is fine, including 0 (SplitMix64 never yields the
    /// all-zero state that would trap xoshiro).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TestRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `bound` (> 0) via Lemire's multiply-shift with
    /// rejection — unbiased for every bound.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // threshold = 2^64 mod bound, computed without u128 division
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `range` (half-open, `start < end` required).
    pub fn gen_range<T: RangeInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range requires a non-empty range");
        T::from_u64(lo + self.below(hi - lo))
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // compare against p scaled into the full 64-bit range
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniformly chosen element of `slice`, `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// Fork a stream-independent child generator: used by the property
    /// harness to give every case its own replayable stream.
    pub fn fork(&mut self) -> TestRng {
        TestRng::seed_from_u64(self.next_u64())
    }
}

/// Integer types [`TestRng::gen_range`] accepts. All ranges are mapped
/// through `u64`, which every unsigned type used in this workspace fits.
pub trait RangeInt: Copy {
    /// Widen to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrow back (the sampled value is always in range by
    /// construction).
    fn from_u64(v: u64) -> Self;
}

macro_rules! range_int {
    ($($t:ty),+) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )+};
}

range_int!(u8, u16, u32, u64, usize);

// Signed types map through an order-preserving bijection (offset by the
// sign bit), so ranges spanning zero sample correctly.
macro_rules! range_int_signed {
    ($($t:ty),+) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 {
                (self as i64 as u64) ^ (1 << 63)
            }
            fn from_u64(v: u64) -> Self {
                (v ^ (1 << 63)) as i64 as $t
            }
        }
    )+};
}

range_int_signed!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Pin the exact stream: any change to seeding or the core breaks
        // every seed-deterministic number in EXPERIMENTS.md.
        let mut r = TestRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            [
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_ends() {
        let mut r = TestRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn gen_range_narrow_types() {
        let mut r = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let b = r.gen_range(0u8..4);
            assert!(b < 4);
            let w = r.gen_range(1u32..5);
            assert!((1..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_signed_spans_zero() {
        let mut r = TestRng::seed_from_u64(6);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..500 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
            seen_pos |= v > 0;
        }
        assert!(seen_neg && seen_pos);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = TestRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} / 10000");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = TestRng::seed_from_u64(4);
        assert_eq!(r.choose::<u8>(&[]), None);
        let pool = [1, 2, 3];
        for _ in 0..50 {
            assert!(pool.contains(r.choose(&pool).unwrap()));
        }
        let mut v: Vec<u32> = (0..20).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements almost surely move");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = TestRng::seed_from_u64(9);
        let mut kid_a = parent.fork();
        let mut kid_b = parent.fork();
        assert_ne!(kid_a.next_u64(), kid_b.next_u64());
    }
}
