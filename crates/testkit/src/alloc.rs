//! Allocation-counting global allocator for the bench harness.
//!
//! Wraps [`std::alloc::System`] and counts allocation events and bytes
//! requested **per thread**, so bench iterations can report
//! `allocs`/`alloc_bytes` deltas alongside wall-clock time — the
//! observability layer for the allocation-lean label hot path work.
//! Per-thread tallies keep the numbers deterministic when bench
//! batteries fan out per scheme on the `xupd-exec` pool: each worker's
//! deltas see only its own scheme's allocations, never a neighbour's.
//!
//! Install it in a bench binary with [`crate::install_counting_allocator!`];
//! binaries without it simply report zeros (the harness reads whatever
//! the counters say, and the CI diff only warns on *growth*).
//!
//! `unsafe` is unavoidable here — the [`GlobalAlloc`] contract is an
//! unsafe trait — and each occurrence below carries an R5 suppression
//! scoped to exactly that necessity.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// Const-initialised `Cell`s have no destructor, so the allocator can
// touch them from any thread state except after TLS teardown — where
// `try_with` makes the count a silent no-op rather than a panic.
thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative `(allocation_events, bytes_requested)` on the **calling
/// thread** since it started. Monotonic; callers take deltas around a
/// measured region on the same thread that runs it.
pub fn counts() -> (u64, u64) {
    (
        ALLOC_EVENTS.try_with(Cell::get).unwrap_or(0),
        ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
    )
}

fn record(bytes: u64) {
    // Ignore allocations during TLS destruction; everything a bench
    // measures happens while the thread is live.
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes));
}

/// A [`System`]-delegating allocator that counts events and bytes.
///
/// `realloc` delegates to `System::realloc` (counted as one event for the
/// grown size) rather than the default alloc+copy+dealloc, so installing
/// the counter preserves the in-place-growth behaviour benches measure.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// lint:allow(R5): GlobalAlloc is an unsafe trait; this impl only delegates to System and bumps atomic counters
unsafe impl GlobalAlloc for CountingAllocator {
    // lint:allow(R5): trait method is declared unsafe fn
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc(layout)
    }

    // lint:allow(R5): trait method is declared unsafe fn
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // lint:allow(R5): trait method is declared unsafe fn
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    // lint:allow(R5): trait method is declared unsafe fn
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }
}

/// Install the [`CountingAllocator`] as the process-wide
/// `#[global_allocator]`. Call once at a bench binary's top level.
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        #[global_allocator]
        static XUPD_COUNTING_ALLOCATOR: $crate::alloc::CountingAllocator =
            $crate::alloc::CountingAllocator;
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_monotone() {
        let (e0, b0) = counts();
        let (e1, b1) = counts();
        assert!(e1 >= e0);
        assert!(b1 >= b0);
    }
}
