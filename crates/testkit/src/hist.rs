//! HDR-style fixed-bucket latency histogram.
//!
//! `bench_store` and the fleet replay driver record one latency value
//! per store operation; at p999 over hundreds of thousands of ops a
//! sorted-`Vec` percentile would dominate the measurement itself. This
//! histogram is the classic HdrHistogram bucket layout cut down to the
//! workspace's needs:
//!
//! * **fixed memory** — [`BUCKETS`] `u64` counters regardless of how
//!   many values are recorded;
//! * **bounded relative error** — values below 64 are exact; above
//!   that, each power-of-two octave splits into 32 sub-buckets, so a
//!   reported quantile is at most one sub-bucket (≤ 1/32 ≈ 3.2%) above
//!   the true value;
//! * **deterministic merge** — [`LatencyHistogram::merge`] is
//!   element-wise counter addition: associative, commutative, and
//!   independent of recording order, which is what per-lane histograms
//!   fanned across pool workers need to combine into one stable report.
//!
//! Values are dimensionless `u64`s; every current caller records
//! nanoseconds.

/// Exact buckets for values `0..LINEAR_MAX`.
const LINEAR_MAX: u64 = 64;
/// Sub-buckets per octave above the linear range (2^5).
const SUB_BITS: u32 = 5;
const SUB_COUNT: usize = 1 << SUB_BITS; // 32
/// Octaves above the linear range: msb 6 ..= 63.
const OCTAVES: usize = 58;
/// Total bucket count (64 linear + 58 octaves × 32 sub-buckets).
pub const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUB_COUNT;

/// Fixed-bucket histogram with HdrHistogram-style resolution decay.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    /// Exact largest recorded value (bucket upper bounds round up).
    max: u64,
    /// Exact smallest recorded value.
    min: u64,
    /// Sum of recorded values (u128: 2^64 ns of total latency overflows
    /// u64 after ~584 years of accumulated ops, but merges add sums).
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("p999", &self.quantile(0.999))
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index for a value.
fn index_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= 6 here
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB_COUNT - 1);
    LINEAR_MAX as usize + (msb as usize - 6) * SUB_COUNT + sub
}

/// Highest value that lands in bucket `i` — what quantiles report, so a
/// quantile never under-states the true value.
fn upper_bound(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    let rel = i - LINEAR_MAX as usize;
    let msb = (rel / SUB_COUNT + 6) as u32;
    let sub = (rel % SUB_COUNT) as u64;
    let lo = (1u64 << msb) + (sub << (msb - SUB_BITS));
    lo + ((1u64 << (msb - SUB_BITS)) - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
        self.sum += u128::from(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / u128::from(self.total)) as u64
        }
    }

    /// The nearest-rank `q`-quantile (`0.0..=1.0`): the smallest bucket
    /// upper bound `v` such that at least `ceil(q · count)` recorded
    /// values are ≤ `v`. Within one sub-bucket (≤ 1/32 relative) of the
    /// exact nearest-rank value; `quantile(1.0)` reports the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // never report past the true extremes
                return upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other` into `self`: element-wise counter addition, exact
    /// min/max/sum combination. Associative and commutative, so lanes
    /// can merge in any grouping and produce identical counters.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// The raw bucket counters (test / serialization seam).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    /// Exact nearest-rank quantile over a value list — the oracle.
    fn exact_quantile(values: &mut Vec<u64>, q: f64) -> u64 {
        values.sort_unstable();
        let n = values.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        values[rank - 1]
    }

    #[test]
    fn bucket_layout_round_trips() {
        // every value's bucket upper bound is >= the value and within
        // one sub-bucket width of it
        for v in (0u64..4096).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX]) {
            let i = index_of(v);
            let ub = upper_bound(i);
            assert!(ub >= v, "upper bound covers the value: v={v}, ub={ub}");
            if v >= LINEAR_MAX {
                let width = ub - upper_bound(i - 1);
                assert!(
                    ub - v < width,
                    "v={v} lands in its own bucket (ub={ub}, width={width})"
                );
                assert!(
                    (ub - v) as f64 <= v as f64 / 32.0 + 1.0,
                    "relative error bounded: v={v}, ub={ub}"
                );
            } else {
                assert_eq!(ub, v, "linear range is exact");
            }
        }
        assert!(index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_match_exact_nearest_rank_within_bound() {
        let mut rng = TestRng::seed_from_u64(0x4157);
        let mut h = LatencyHistogram::new();
        let mut values: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            // log-uniform-ish latencies from 10ns to ~100ms
            let mag = rng.gen_range(1..27u32);
            let v = (1u64 << mag) + rng.gen_range(0..(1u64 << mag));
            h.record(v);
            values.push(v);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&mut values.clone(), q);
            let got = h.quantile(q);
            assert!(got >= exact, "q={q}: {got} under-states exact {exact}");
            assert!(
                got as f64 <= exact as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "q={q}: {got} over-states exact {exact} beyond the bucket bound"
            );
        }
        assert_eq!(h.quantile(1.0), *values.iter().max().unwrap(), "p100 exact");
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn small_exact_cases() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!((h.min(), h.max(), h.mean()), (0, 0, 0));
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        // linear range: exact nearest-rank answers
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.2), 1);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.8), 4);
        assert_eq!(h.quantile(1.0), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.mean(), 3);
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        let mut rng = TestRng::seed_from_u64(0x1234);
        let mut parts: Vec<LatencyHistogram> = Vec::new();
        for _ in 0..3 {
            let mut h = LatencyHistogram::new();
            for _ in 0..500 {
                h.record(rng.gen_range(0..1_000_000));
            }
            parts.push(h);
        }
        let [a, b, c] = [&parts[0], &parts[1], &parts[2]];

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        // c ⊕ b ⊕ a (commuted)
        let mut rev = c.clone();
        rev.merge(b);
        rev.merge(a);

        for other in [&right, &rev] {
            assert_eq!(left.counts(), other.counts());
            assert_eq!(left.count(), other.count());
            assert_eq!(left.min(), other.min());
            assert_eq!(left.max(), other.max());
            assert_eq!(left.mean(), other.mean());
        }
        // merged quantiles agree with recording everything into one
        let mut one = LatencyHistogram::new();
        for p in &parts {
            one.merge(p);
        }
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(one.quantile(q), left.quantile(q));
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        h.record(9000);
        let before = (h.counts().to_vec(), h.min(), h.max(), h.count());
        h.merge(&LatencyHistogram::new());
        assert_eq!(
            (h.counts().to_vec(), h.min(), h.max(), h.count()),
            before,
            "empty merge changes nothing"
        );
    }
}
