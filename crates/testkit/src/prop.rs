//! Minimal property-testing harness: generators, combinators, a
//! [`props!`](crate::props) test macro, bounded case counts, greedy
//! shrinking and failure-seed reporting.
//!
//! The design is deliberately small (quickcheck-shaped, not
//! proptest-shaped): a [`Gen`] produces values from a [`TestRng`] and
//! can propose structurally smaller variants of a failing value. Every
//! case runs from its own derived seed; a failure report prints that
//! seed and `XUPD_PROP_SEED=<seed>` replays exactly the failing case
//! first.

use crate::rng::{RangeInt, TestRng};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------- generators ------------------------------------------------

/// A value generator with optional shrinking.
pub trait Gen {
    /// Generated value type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate smaller values for `value`, most aggressive first. The
    /// harness greedily walks these while the property keeps failing.
    /// Default: no shrinking (combinators that lose the pre-image, like
    /// [`map`], cannot shrink).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Uniform integer in a half-open range.
pub struct Ints<T> {
    range: Range<T>,
}

/// Uniform integer in `range` (e.g. `ints(0usize..400)`).
pub fn ints<T: RangeInt + PartialOrd + Debug>(range: Range<T>) -> Ints<T> {
    assert!(range.start < range.end, "ints requires a non-empty range");
    Ints { range }
}

impl<T: RangeInt + Clone + Debug + PartialEq> Gen for Ints<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.range.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        let lo = self.range.start.to_u64();
        let v = value.to_u64();
        let mut out = Vec::new();
        if v > lo {
            out.push(T::from_u64(lo)); // minimum first: most aggressive
            let half = lo + (v - lo) / 2;
            if half != lo && half != v {
                out.push(T::from_u64(half));
            }
            out.push(T::from_u64(v - 1));
        }
        out
    }
}

/// Uniform `u64` over the full domain.
pub struct AnyU64;

/// Any `u64` (the `any::<u64>()` replacement).
pub fn any_u64() -> AnyU64 {
    AnyU64
}

impl Gen for AnyU64 {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v > 0 {
            out.push(0);
            if v > 1 {
                out.push(v / 2);
            }
            out.push(v - 1);
        }
        out
    }
}

/// Uniform `u64` in `min..=u64::MAX` (the `1u64..` replacement).
pub struct U64sFrom {
    min: u64,
}

/// Any `u64 >= min`.
pub fn u64s_from(min: u64) -> U64sFrom {
    U64sFrom { min }
}

impl Gen for U64sFrom {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        // rejection: for the small `min`s tests use, this virtually
        // never loops
        loop {
            let v = rng.next_u64();
            if v >= self.min {
                return v;
            }
        }
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v > self.min {
            out.push(self.min);
            let half = self.min + (v - self.min) / 2;
            if half != self.min && half != v {
                out.push(half);
            }
            out.push(v - 1);
        }
        out
    }
}

/// Uniform booleans.
pub struct Bools;

/// `true` or `false`, evenly.
pub fn bools() -> Bools {
    Bools
}

impl Gen for Bools {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A fixed value (the `Just` replacement).
pub struct JustV<T> {
    value: T,
}

/// Always `value`.
pub fn just<T: Clone + Debug>(value: T) -> JustV<T> {
    JustV { value }
}

impl<T: Clone + Debug> Gen for JustV<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.value.clone()
    }
}

/// Uniform pick from a fixed slice (the `prop_oneof![Just(..)]`
/// replacement for enumerable choices).
pub struct FromSlice<T: 'static> {
    choices: &'static [T],
}

/// One of `choices`, uniformly.
pub fn from_slice<T: Clone + Debug>(choices: &'static [T]) -> FromSlice<T> {
    assert!(!choices.is_empty());
    FromSlice { choices }
}

impl<T: Clone + Debug + PartialEq> Gen for FromSlice<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.choose(self.choices).expect("non-empty").clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // earlier choices are "smaller"
        self.choices
            .iter()
            .take_while(|c| *c != value)
            .cloned()
            .collect()
    }
}

/// Vectors of `elem` with length in `min..=max`.
pub struct Vecs<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// `Vec<elem>` with length drawn uniformly from `min..=max`.
pub fn vecs<G: Gen>(elem: G, min: usize, max: usize) -> Vecs<G> {
    assert!(min <= max);
    Vecs { elem, min, max }
}

impl<G: Gen> Gen for Vecs<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<G::Value> {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max + 1)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        // structurally smaller first: drop half, drop one element
        if n > self.min {
            let keep = self.min.max(n / 2);
            if keep < n {
                out.push(value[..keep].to_vec());
            }
            for i in (0..n).rev() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
                if out.len() > 24 {
                    break;
                }
            }
        }
        // then shrink individual elements (first few positions)
        for i in 0..n.min(8) {
            for cand in self.elem.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Strings over an explicit character set.
pub struct Strings {
    charset: Vec<char>,
    min: usize,
    max: usize,
}

/// String of length `min..=max` over `charset`'s characters — the
/// `"[abc]{0,n}"` regex-strategy replacement.
pub fn strings(charset: &str, min: usize, max: usize) -> Strings {
    let charset: Vec<char> = charset.chars().collect();
    assert!(!charset.is_empty() && min <= max);
    Strings { charset, min, max }
}

/// Printable-ASCII strings (the `"[ -~]{min,max}"` replacement).
pub fn ascii_strings(min: usize, max: usize) -> Strings {
    let charset: String = (' '..='~').collect();
    strings(&charset, min, max)
}

impl Gen for Strings {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max + 1)
        };
        (0..len)
            .map(|_| *rng.choose(&self.charset).expect("non-empty"))
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let n = chars.len();
        let mut out = Vec::new();
        if n > self.min {
            let keep = self.min.max(n / 2);
            if keep < n {
                out.push(chars[..keep].iter().collect());
            }
            for i in (0..n).rev() {
                let mut c = chars.clone();
                c.remove(i);
                out.push(c.into_iter().collect());
                if out.len() > 24 {
                    break;
                }
            }
        }
        out
    }
}

/// Arbitrary unicode-bearing strings (the `".{0,n}"` replacement):
/// mostly printable ASCII, salted with markup metacharacters, control
/// bytes and multi-byte scalars — the mix parser fuzzing wants.
pub struct AnyStrings {
    min: usize,
    max: usize,
}

/// Adversarial free-form strings of length `min..=max` characters.
pub fn any_strings(min: usize, max: usize) -> AnyStrings {
    assert!(min <= max);
    AnyStrings { min, max }
}

impl Gen for AnyStrings {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const SPECIALS: &[char] = &[
            '<', '>', '&', '"', '\'', '/', '=', ';', '!', '?', '[', ']', '-', '\t', '\r', '\u{0}',
            '\u{7f}', 'é', 'λ', '中', '\u{1f600}',
        ];
        let len = if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max + 1)
        };
        (0..len)
            .map(|_| match rng.gen_range(0u8..10) {
                0..=6 => char::from(rng.gen_range(0x20u8..0x7f)),
                7..=8 => *rng.choose(SPECIALS).expect("non-empty"),
                _ => {
                    // any valid scalar value
                    loop {
                        if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                            break c;
                        }
                    }
                }
            })
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        Strings {
            charset: vec!['a'],
            min: self.min,
            max: self.max,
        }
        .shrink(value)
    }
}

/// Balanced-ish open/close move sequences for building label trees:
/// `true` opens a child, `false` closes the current one. Consumers feed
/// the moves to their tree builder (testkit stays DOM-agnostic).
pub struct TreeShapes {
    moves: Vecs<Bools>,
}

/// `min..=max` tree-building moves — the label-tree combinator.
pub fn tree_shapes(min: usize, max: usize) -> TreeShapes {
    TreeShapes {
        moves: vecs(bools(), min, max),
    }
}

impl Gen for TreeShapes {
    type Value = Vec<bool>;

    fn generate(&self, rng: &mut TestRng) -> Vec<bool> {
        self.moves.generate(rng)
    }

    fn shrink(&self, value: &Vec<bool>) -> Vec<Vec<bool>> {
        self.moves.shrink(value)
    }
}

/// Mapped generator (no shrinking: the pre-image is lost).
pub struct Map<G, F> {
    inner: G,
    f: F,
}

/// Transform `inner`'s values through `f` (the `prop_map` replacement).
pub fn map<G: Gen, T: Clone + Debug, F: Fn(G::Value) -> T>(inner: G, f: F) -> Map<G, F> {
    Map { inner, f }
}

impl<G: Gen, T: Clone + Debug, F: Fn(G::Value) -> T> Gen for Map<G, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! tuple_gen {
    ($(($($g:ident / $v:ident / $idx:tt),+))+) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_gen! {
    (A / a / 0)
    (A / a / 0, B / b / 1)
    (A / a / 0, B / b / 1, C / c / 2)
    (A / a / 0, B / b / 1, C / c / 2, D / d / 3)
}

// ---------- the runner ------------------------------------------------

/// One property evaluation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The property held.
    Pass,
    /// Preconditions not met (`prop_assume!`) — the case doesn't count.
    Discard,
    /// The property failed with this message.
    Fail(String),
}

/// Harness configuration: bounded case count, shrink budget, base seed.
#[derive(Debug, Clone)]
pub struct Config {
    /// Accepted (non-discarded) cases to run.
    pub cases: u32,
    /// Maximum greedy shrink steps after a failure.
    pub max_shrink_steps: u32,
    /// Base seed; each case derives its own seed from it. Overridden by
    /// `XUPD_PROP_SEED` for failure replay.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_steps: 256,
            seed: 0x5eed_1e57,
        }
    }
}

impl Config {
    /// Default config with an explicit case count (the
    /// `ProptestConfig::with_cases` replacement).
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// FNV-1a over the property name: decorrelates sibling properties that
/// share a config seed.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn run_one<V: Clone, P: Fn(V) -> Outcome>(prop: &P, value: V) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Outcome::Fail(format!("panicked: {msg}"))
        }
    }
}

/// Run `prop` against `cfg.cases` generated values. Panics with a full
/// report — reproducing seed, original and shrunk counterexample — on
/// the first failure. Set `XUPD_PROP_SEED` to a failure's reported case
/// seed to replay it as case 0.
pub fn check<G: Gen, P: Fn(G::Value) -> Outcome>(name: &str, cfg: &Config, gen: &G, prop: P) {
    let replay: Option<u64> = std::env::var("XUPD_PROP_SEED")
        .ok()
        .and_then(|s| parse_seed(&s));
    let base = cfg.seed ^ fnv1a(name);
    let max_discards = u64::from(cfg.cases) * 16 + 100;
    let mut accepted = 0u32;
    let mut discarded = 0u64;
    let mut attempt = 0u64;

    while accepted < cfg.cases {
        let case_seed = match replay {
            Some(s) if attempt == 0 => s,
            _ => TestRng::seed_from_u64(base.wrapping_add(attempt)).next_u64(),
        };
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        match run_one(&prop, value.clone()) {
            Outcome::Pass => accepted += 1,
            Outcome::Discard => {
                discarded += 1;
                if discarded > max_discards {
                    panic!(
                        "property '{name}': too many discards \
                         ({discarded} rejects for {accepted} accepted cases) — \
                         loosen the generator or the prop_assume! conditions"
                    );
                }
            }
            Outcome::Fail(first_msg) => {
                let (shrunk, shrunk_msg, steps) =
                    shrink_failure(gen, &prop, value.clone(), first_msg.clone(), cfg);
                panic!(
                    "property '{name}' failed (case {accepted}, seed {case_seed:#018x})\n\
                     replay: XUPD_PROP_SEED={case_seed:#x} cargo test {name}\n\
                     original: {first_msg}\n\
                     original input: {value:?}\n\
                     shrunk ({steps} steps): {shrunk_msg}\n\
                     shrunk input: {shrunk:?}"
                );
            }
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn shrink_failure<G: Gen, P: Fn(G::Value) -> Outcome>(
    gen: &G,
    prop: &P,
    mut cur: G::Value,
    mut cur_msg: String,
    cfg: &Config,
) -> (G::Value, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in gen.shrink(&cur) {
            if let Outcome::Fail(msg) = run_one(prop, cand.clone()) {
                cur = cand;
                cur_msg = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (cur, cur_msg, steps)
}

// ---------- assertion macros ------------------------------------------

/// Property-scoped assertion: records a failure (with the failing
/// expression and optional formatted message) instead of panicking, so
/// the harness can shrink and report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::prop::Outcome::Fail(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::prop::Outcome::Fail(
                format!("assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return $crate::prop::Outcome::Fail(format!(
                        "assertion failed: {} == {} ({:?} != {:?})",
                        stringify!($left), stringify!($right), l, r));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return $crate::prop::Outcome::Fail(format!(
                        "assertion failed: {} == {} ({:?} != {:?}) — {}",
                        stringify!($left), stringify!($right), l, r, format!($($fmt)+)));
                }
            }
        }
    };
}

/// Precondition: discard the case (without counting it) when `cond`
/// doesn't hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::prop::Outcome::Discard;
        }
    };
}

/// Declare property tests. Each `fn name(pat in gen, ...) { body }`
/// becomes a `#[test]` running `body` against generated bindings under
/// the block's [`Config`] (`config = expr;`, defaulting to
/// [`Config::default`]).
///
/// ```ignore
/// props! {
///     config = Config::with_cases(64);
///
///     fn addition_commutes(a in any_u64(), b in any_u64()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:ident in $gen:expr),+ $(,)?) { $($body:tt)* }
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cfg: $crate::prop::Config = $cfg;
            let __gen = ($($gen,)+);
            $crate::prop::check(stringify!($name), &__cfg, &__gen, |__value| {
                let ($($pat,)+) = __value;
                $($body)*
                #[allow(unreachable_code)]
                $crate::prop::Outcome::Pass
            });
        }
        $crate::props!(@cfg ($cfg) $($rest)*);
    };
    (config = $cfg:expr; $($rest:tt)*) => {
        $crate::props!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::props!(@cfg ($crate::prop::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::with_cases(50);
        let seen = std::cell::Cell::new(0u32);
        check("always_true", &cfg, &ints(0usize..100), |_v| {
            seen.set(seen.get() + 1);
            Outcome::Pass
        });
        assert_eq!(seen.get(), 50);
    }

    #[test]
    fn failing_property_panics_with_seed_report() {
        let cfg = Config::with_cases(200);
        let res = catch_unwind(AssertUnwindSafe(|| {
            check("fails_over_10", &cfg, &ints(0u64..1000), |v| {
                if v > 10 {
                    Outcome::Fail(format!("{v} > 10"))
                } else {
                    Outcome::Pass
                }
            });
        }));
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("XUPD_PROP_SEED="), "{msg}");
        assert!(msg.contains("shrunk"), "{msg}");
        // greedy shrink on an int range lands on the boundary
        assert!(msg.contains("shrunk input: 11"), "{msg}");
    }

    #[test]
    fn shrinking_minimises_vectors() {
        let cfg = Config::default();
        let gen = vecs(ints(0u32..100), 0, 30);
        let res = catch_unwind(AssertUnwindSafe(|| {
            check("vec_len_under_5", &cfg, &gen, |v| {
                if v.len() >= 5 {
                    Outcome::Fail("too long".into())
                } else {
                    Outcome::Pass
                }
            });
        }));
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        // minimal failing vector has exactly 5 elements, all shrunk to 0
        assert!(
            msg.contains("shrunk input: [0, 0, 0, 0, 0]"),
            "{msg}"
        );
    }

    #[test]
    fn panics_are_reported_not_propagated_raw() {
        let cfg = Config::with_cases(20);
        let res = catch_unwind(AssertUnwindSafe(|| {
            check("always_panics", &cfg, &bools(), |_| -> Outcome {
                panic!("boom");
            });
        }));
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("panicked: boom"), "{msg}");
    }

    #[test]
    fn discards_are_bounded() {
        let cfg = Config::with_cases(10);
        let res = catch_unwind(AssertUnwindSafe(|| {
            check("discards_everything", &cfg, &bools(), |_| Outcome::Discard);
        }));
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("too many discards"), "{msg}");
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let gen = (
            vecs(ints(0u8..10), 0, 12),
            ascii_strings(0, 20),
            any_strings(0, 20),
        );
        let mut a = TestRng::seed_from_u64(5);
        let mut b = TestRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(gen.generate(&mut a), gen.generate(&mut b));
        }
    }

    #[test]
    fn strings_respect_charset_and_bounds() {
        let gen = strings("abc", 2, 6);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = gen.generate(&mut rng);
            assert!((2..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| "abc".contains(c)));
        }
    }

    #[test]
    fn tree_shapes_generate_bounded_moves() {
        let gen = tree_shapes(1, 40);
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let moves = gen.generate(&mut rng);
            assert!((1..=40).contains(&moves.len()));
        }
    }

    props! {
        config = Config::with_cases(64);

        fn macro_declared_props_work(a in any_u64(), b in any_u64()) {
            prop_assume!(a != b);
            prop_assert!(a.wrapping_add(b) == b.wrapping_add(a));
            prop_assert_eq!(a.max(b), b.max(a), "max commutes");
        }

        fn single_binding_works(v in vecs(bools(), 0, 10)) {
            prop_assert!(v.len() <= 10);
        }
    }
}
