//! Wall-clock micro-benchmark harness: warmup, N timed iterations,
//! median/p90 summary, JSON emission into `results/BENCH_<suite>.json`.
//!
//! The harness is intentionally simple — no statistical outlier
//! modelling, just enough repetitions to make medians stable — because
//! the repo's perf trajectory compares *shapes and orderings* between
//! commits, per DESIGN.md, not absolute nanoseconds. Iteration counts
//! can be raised for quieter numbers via `XUPD_BENCH_ITERS`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

pub use std::hint::black_box;

/// Timing summary of one benchmark case.
///
/// The run-order times are sorted **once**, lazily, into a private
/// cache; every summary statistic (median, p90, min, max) reads that
/// shared sorted slice instead of re-sorting a clone per accessor.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Case name, e.g. `update/random/QED/100`.
    pub name: String,
    /// Per-iteration wall-clock times, nanoseconds, in run order.
    /// Private so the sorted cache can never go stale.
    times_ns: Vec<u64>,
    /// Per-iteration allocation-event deltas (empty or all-zero when the
    /// binary did not install the counting allocator).
    allocs: Vec<u64>,
    /// Per-iteration allocated-byte deltas.
    alloc_bytes: Vec<u64>,
    /// Lazily sorted copy of `times_ns`, shared by all summary stats.
    sorted: OnceLock<Vec<u64>>,
}

impl Sample {
    /// A sample from per-iteration times in run order (no allocation
    /// counts — they report as zero).
    pub fn new(name: impl Into<String>, times_ns: Vec<u64>) -> Sample {
        Sample::with_allocs(name, times_ns, Vec::new(), Vec::new())
    }

    /// A sample carrying per-iteration allocation deltas next to the
    /// times (same run order).
    pub fn with_allocs(
        name: impl Into<String>,
        times_ns: Vec<u64>,
        allocs: Vec<u64>,
        alloc_bytes: Vec<u64>,
    ) -> Sample {
        Sample {
            name: name.into(),
            times_ns,
            allocs,
            alloc_bytes,
            sorted: OnceLock::new(),
        }
    }

    /// Per-iteration wall-clock times, nanoseconds, in run order.
    pub fn times_ns(&self) -> &[u64] {
        &self.times_ns
    }

    fn sorted(&self) -> &[u64] {
        self.sorted.get_or_init(|| {
            let mut t = self.times_ns.clone();
            t.sort_unstable();
            t
        })
    }

    /// Median iteration time.
    pub fn median_ns(&self) -> u64 {
        let t = self.sorted();
        let n = t.len();
        if n == 0 {
            return 0;
        }
        if n % 2 == 1 {
            t[n / 2]
        } else {
            (t[n / 2 - 1] + t[n / 2]) / 2
        }
    }

    /// 90th-percentile iteration time (nearest-rank).
    pub fn p90_ns(&self) -> u64 {
        let t = self.sorted();
        if t.is_empty() {
            return 0;
        }
        let rank = (t.len() * 9).div_ceil(10);
        t[rank.saturating_sub(1)]
    }

    /// Fastest iteration.
    pub fn min_ns(&self) -> u64 {
        self.sorted().first().copied().unwrap_or(0)
    }

    /// Slowest iteration.
    pub fn max_ns(&self) -> u64 {
        self.sorted().last().copied().unwrap_or(0)
    }

    /// Arithmetic mean iteration time.
    pub fn mean_ns(&self) -> u64 {
        if self.times_ns.is_empty() {
            return 0;
        }
        (self.times_ns.iter().map(|&t| u128::from(t)).sum::<u128>()
            / self.times_ns.len() as u128) as u64
    }

    /// Median allocation events per iteration (0 when not counted).
    pub fn allocs(&self) -> u64 {
        median_of(&self.allocs)
    }

    /// Median allocated bytes per iteration (0 when not counted).
    pub fn alloc_bytes(&self) -> u64 {
        median_of(&self.alloc_bytes)
    }
}

fn median_of(values: &[u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2
    }
}

/// A benchmark suite: register cases with [`Harness::bench`], then
/// [`Harness::finish`] to print the table and write the JSON artifact.
#[derive(Debug)]
pub struct Harness {
    suite: String,
    warmup_iters: u32,
    timed_iters: u32,
    samples: Vec<Sample>,
}

impl Harness {
    /// New suite with the default schedule (3 warmup, 15 timed
    /// iterations; override the timed count with `XUPD_BENCH_ITERS`).
    pub fn new(suite: &str) -> Harness {
        let timed = std::env::var("XUPD_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15);
        Harness::with_schedule(suite, 3, timed)
    }

    /// New suite with an explicit warmup/timed schedule.
    pub fn with_schedule(suite: &str, warmup_iters: u32, timed_iters: u32) -> Harness {
        assert!(timed_iters > 0);
        Harness {
            suite: suite.to_string(),
            warmup_iters,
            timed_iters,
            samples: Vec::new(),
        }
    }

    /// Run one case: `warmup` untimed calls, then the timed iterations.
    /// The closure's return value is passed through [`black_box`] so the
    /// optimiser cannot delete the measured work.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, f: F) {
        let sample = self.bench_case(name, f);
        self.push(sample);
    }

    /// Measure one case and return its [`Sample`] without recording or
    /// printing anything. Takes `&self`, so per-scheme cases can run on
    /// `xupd-exec` pool workers concurrently — allocation deltas are
    /// per-thread, so each worker's counts cover only its own closure —
    /// and the completed samples are [`Harness::push`]ed on the driving
    /// thread in roster order for deterministic output.
    pub fn bench_case<R, F: FnMut() -> R>(&self, name: &str, mut f: F) -> Sample {
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.timed_iters as usize);
        let mut allocs = Vec::with_capacity(self.timed_iters as usize);
        let mut alloc_bytes = Vec::with_capacity(self.timed_iters as usize);
        for _ in 0..self.timed_iters {
            let (e0, b0) = crate::alloc::counts();
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let (e1, b1) = crate::alloc::counts();
            times.push(elapsed);
            allocs.push(e1 - e0);
            alloc_bytes.push(b1 - b0);
        }
        Sample::with_allocs(name, times, allocs, alloc_bytes)
    }

    /// Record a completed sample: print its summary line and append it
    /// to the suite in push order.
    pub fn push(&mut self, sample: Sample) {
        println!(
            "{:<48} median {:>12}  p90 {:>12}",
            sample.name,
            fmt_ns(sample.median_ns()),
            fmt_ns(sample.p90_ns())
        );
        self.samples.push(sample);
    }

    /// Render the whole suite as JSON (stable field order, no external
    /// serializer).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"suite\": {},", json_str(&self.suite));
        let _ = writeln!(out, "  \"warmup_iters\": {},", self.warmup_iters);
        let _ = writeln!(out, "  \"timed_iters\": {},", self.timed_iters);
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let times: Vec<String> = s.times_ns.iter().map(|t| t.to_string()).collect();
            let _ = write!(
                out,
                "    {{\"name\": {}, \"median_ns\": {}, \"p90_ns\": {}, \
                 \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"allocs\": {}, \"alloc_bytes\": {}, \"times_ns\": [{}]}}",
                json_str(&s.name),
                s.median_ns(),
                s.p90_ns(),
                s.mean_ns(),
                s.min_ns(),
                s.max_ns(),
                s.allocs(),
                s.alloc_bytes(),
                times.join(", ")
            );
            out.push_str(if i + 1 < self.samples.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Print the summary footer and write
    /// `<results_dir>/BENCH_<suite>.json`, creating the directory if
    /// needed. Returns the written path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.suite));
        std::fs::write(&path, self.to_json())?;
        println!(
            "\n{}: {} cases, {} timed iters each -> {}",
            self.suite,
            self.samples.len(),
            self.timed_iters,
            path.display()
        );
        Ok(path)
    }
}

/// Nanoseconds on a monotonic clock, for per-operation latency
/// measurements that cannot flow through [`Harness::bench`] (the store
/// fleet driver times each op inside a pool worker). This module is the
/// only place allowed to touch the wall clock (lint rule R3), so every
/// other crate takes its timestamps from here. The epoch is the first
/// call in the process; only differences are meaningful.
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now()
        .duration_since(epoch)
        .as_nanos()
        .min(u128::from(u64::MAX)) as u64
}

/// The `results/` directory: `XUPD_RESULTS_DIR` when set, otherwise the
/// nearest ancestor of the current directory that already contains
/// `results/`, otherwise `./results`.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("XUPD_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    let mut cur = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let cand = cur.join("results");
        if cand.is_dir() {
            return cand;
        }
        if !cur.pop() {
            return PathBuf::from("results");
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Check `path` exists relative to the located results dir — helper for
/// smoke tests of emitted artifacts.
pub fn results_file(name: &str) -> PathBuf {
    results_dir().join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(times: &[u64]) -> Sample {
        Sample::new("s", times.to_vec())
    }

    #[test]
    fn summary_statistics() {
        let s = sample(&[5, 1, 4, 2, 3]);
        assert_eq!(s.median_ns(), 3);
        assert_eq!(s.min_ns(), 1);
        assert_eq!(s.max_ns(), 5);
        assert_eq!(s.mean_ns(), 3);
        assert_eq!(s.p90_ns(), 5);
        let even = sample(&[1, 2, 3, 4]);
        assert_eq!(even.median_ns(), 2);
        let ten = sample(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(ten.p90_ns(), 90);
    }

    #[test]
    fn summary_stats_share_one_sorted_slice() {
        // Regression: each stat used to sort a fresh clone; now the
        // first accessor sorts once and the rest read the same cache.
        let s = sample(&[5, 1, 4, 2, 3]);
        assert!(s.sorted.get().is_none(), "cache starts empty");
        let _ = s.median_ns();
        let first = s.sorted.get().map(Vec::as_ptr);
        assert!(first.is_some(), "first stat populated the cache");
        let _ = (s.p90_ns(), s.min_ns(), s.max_ns());
        assert_eq!(s.sorted.get().map(Vec::as_ptr), first, "no re-sort");
        assert_eq!(s.sorted.get().unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(s.times_ns(), &[5, 1, 4, 2, 3], "run order preserved");
    }

    #[test]
    fn harness_runs_warmup_plus_timed() {
        let mut calls = 0u32;
        let mut h = Harness::with_schedule("unit", 2, 5);
        h.bench("counter", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 7);
        assert_eq!(h.samples.len(), 1);
        assert_eq!(h.samples[0].times_ns.len(), 5);
    }

    #[test]
    fn bench_case_measures_without_recording() {
        let h = Harness::with_schedule("unit_case", 1, 4);
        let mut calls = 0u32;
        let s = h.bench_case("case", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5, "1 warmup + 4 timed");
        assert_eq!(s.times_ns.len(), 4);
        assert_eq!(h.samples.len(), 0, "bench_case does not record");
        let mut h = h;
        h.push(s);
        assert_eq!(h.samples.len(), 1);
        assert_eq!(h.samples[0].name, "case");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = Harness::with_schedule("unit_json", 0, 3);
        h.bench("a/b \"quoted\"", || 1 + 1);
        let json = h.to_json();
        assert!(json.contains("\"suite\": \"unit_json\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"allocs\""));
        assert!(json.contains("\"alloc_bytes\""));
        // balanced braces/brackets (cheap well-formedness check)
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count()
        );
    }

    #[test]
    fn alloc_medians_come_from_per_iteration_deltas() {
        let s = Sample::with_allocs("s", vec![1, 2, 3], vec![4, 10, 6], vec![40, 100, 60]);
        assert_eq!(s.allocs(), 6);
        assert_eq!(s.alloc_bytes(), 60);
        // plain Sample::new reports zeros, not garbage
        let plain = Sample::new("p", vec![1, 2, 3]);
        assert_eq!(plain.allocs(), 0);
        assert_eq!(plain.alloc_bytes(), 0);
    }

    #[test]
    fn results_dir_env_override() {
        // no env mutation (tests run in parallel): just exercise the
        // lookup path
        let d = results_dir();
        assert!(d.ends_with("results") || d.is_dir());
        assert!(results_file("BENCH_x.json").to_string_lossy().contains("BENCH_x.json"));
    }
}
