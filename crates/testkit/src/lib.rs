//! # xupd-testkit — hermetic test & bench substrate
//!
//! The workspace's only randomness, property-testing and benchmarking
//! layer, with **zero external dependencies** — the repo must build and
//! verify with `CARGO_NET_OFFLINE=true` and an empty registry cache
//! (EXPERIMENTS.md's reproducibility contract).
//!
//! Three modules:
//!
//! * [`rng`] — deterministic SplitMix64-seeded xoshiro256++
//!   ([`rng::TestRng`]): the single seed-replayable randomness source
//!   for workload generators and verifiers.
//! * [`prop`] — a bounded property-testing harness (generator
//!   combinators, the [`props!`] macro, greedy shrinking, failure-seed
//!   reporting) that the former proptest suites run on.
//! * [`bench`] — a wall-clock micro-bench harness (warmup, timed
//!   iterations, median/p90, JSON emitted into
//!   `results/BENCH_<suite>.json`) that the former criterion benches
//!   run on, as plain offline binaries. It also hosts
//!   [`bench::monotonic_ns`], the workspace's single sanctioned
//!   monotonic clock (lint rule R3 bans ambient clocks everywhere
//!   else).
//! * [`hist`] — an HDR-style fixed-bucket latency histogram
//!   ([`hist::LatencyHistogram`]: `record`/`quantile`/`merge`) for the
//!   store fleet benches, where per-op latencies at p999 volume would
//!   drown a sorted-vector percentile.
//!
//! Replaying a property failure: the panic report prints the failing
//! case's seed; rerun with `XUPD_PROP_SEED=<seed> cargo test <name>`.

pub mod alloc;
pub mod bench;
pub mod hist;
pub mod prop;
pub mod rng;

pub use hist::LatencyHistogram;
pub use rng::TestRng;
