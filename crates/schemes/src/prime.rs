//! The Prime Number labelling scheme (Wu, Lee & Hsu, ICDE 2004 — \[25\] in
//! the paper; named in §6 as follow-up evaluation work).
//!
//! Every node is assigned a distinct prime `p(v)`; its label is the pair
//! `(p(v), product of primes along the root path)`. Structure queries are
//! arithmetic on the products:
//!
//! * ancestor: `label(a).product` divides `label(b).product`;
//! * parent:  `a.product × b.prime = b.product`;
//! * sibling: equal parent products (`a.product / a.prime`).
//!
//! Document order is *not* in the product: the published scheme keeps a
//! global **simultaneous congruence** (SC) value, maintained by the
//! Chinese Remainder Theorem, with `order(v) = SC mod p(v)`. Updating
//! order touches only SC — labels are fully persistent — but the SC
//! recomputation after an insertion is Θ(document), which this
//! implementation models by rebuilding the per-prime order table from the
//! tree (counted as relabels? no — labels never change; the cost appears
//! as update latency in the benchmarks, exactly the trade-off the scheme
//! makes).
//!
//! Products outgrow machine words within a few levels, hence the
//! [`BigUint`] substrate.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use xupd_labelcore::biguint::BigUint;
use xupd_labelcore::{
    Compliance, EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A prime-scheme label: the node's own prime and the root-path product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimeLabel {
    /// The node's self prime (1 for the document root).
    pub prime: u64,
    /// Product of self primes along the root path.
    pub product: BigUint,
}

impl PartialOrd for PrimeLabel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PrimeLabel {
    // An arbitrary-but-total order for indexing/dedup; document order
    // lives in the scheme's SC table.
    fn cmp(&self, other: &Self) -> Ordering {
        self.product
            .cmp(&other.product)
            .then(self.prime.cmp(&other.prime))
    }
}

impl Label for PrimeLabel {
    fn size_bits(&self) -> u64 {
        64 + self.product.bit_len()
    }

    fn display(&self) -> String {
        format!("{}⟨{}⟩", self.prime, self.product)
    }
}

/// The Prime Number labelling scheme.
#[derive(Debug, Clone)]
pub struct Prime {
    stats: SchemeStats,
    next_candidate: u64,
    /// order(v) = SC mod p(v) in the published scheme; modelled as the
    /// per-prime order table the congruence encodes. A `BTreeMap` keeps
    /// iteration deterministic (lint rule R2).
    sc_order: BTreeMap<u64, u64>,
}

impl Default for Prime {
    fn default() -> Self {
        Self::new()
    }
}

impl Prime {
    /// A fresh Prime scheme.
    pub fn new() -> Self {
        Prime {
            stats: SchemeStats::default(),
            next_candidate: 2,
            sc_order: BTreeMap::new(),
        }
    }

    fn next_prime(&mut self) -> u64 {
        loop {
            let c = self.next_candidate;
            self.next_candidate += 1;
            if is_prime(c) {
                return c;
            }
        }
    }

    /// Rebuild the SC order table — the CRT recomputation the published
    /// scheme performs after a structural update.
    fn recompute_sc(&mut self, tree: &XmlTree, labeling: &Labeling<PrimeLabel>) {
        self.sc_order.clear();
        for (i, id) in tree.preorder().enumerate() {
            if let Some(l) = labeling.get(id) {
                self.sc_order.insert(l.prime, i as u64);
            }
        }
    }
}

/// Trial-division primality — candidate primes stay small (one per node).
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n % 2 == 0 {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

impl LabelingScheme for Prime {
    type Label = PrimeLabel;

    fn name(&self) -> &'static str {
        "Prime"
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "Prime",
            citation: "[25]",
            order: OrderKind::Global,
            encoding: EncodingRep::Variable,
            // Not a Figure 7 row; declared from the ICDE 2004 claims.
            declared: [
                Compliance::Full,    // Persistent (SC absorbs all updates)
                Compliance::Full,    // XPath (divisibility algebra)
                Compliance::None,    // Level (not in the label)
                Compliance::Full,    // Overflow (labels never change; only
                                     // the SC value regrows)
                Compliance::None,    // Orthogonal
                Compliance::None,    // Compact (products grow fast)
                Compliance::Full,    // Division (assignment multiplies
                                     // only; §5.1 scopes the property to
                                     // labelling and updates — the
                                     // divisibility tests are query-time)
                Compliance::Full,    // Recursion (streaming assignment)
            ],
            in_figure7: false,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<PrimeLabel>, TreeError> {
        let mut labeling = Labeling::with_capacity_for(tree);
        labeling.set(
            tree.root(),
            PrimeLabel {
                prime: 1,
                product: BigUint::one(),
            },
        );
        for node in tree.preorder() {
            if node == tree.root() {
                continue;
            }
            let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
            let parent_product = labeling.req(parent)?.product.clone();
            let p = self.next_prime();
            labeling.set(
                node,
                PrimeLabel {
                    prime: p,
                    product: parent_product.mul_small(p),
                },
            );
        }
        self.recompute_sc(tree, &labeling);
        Ok(labeling)
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<PrimeLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        let parent_product = labeling.req(parent)?.product.clone();
        let p = self.next_prime();
        labeling.set(
            node,
            PrimeLabel {
                prime: p,
                product: parent_product.mul_small(p),
            },
        );
        // Labels untouched; only the simultaneous congruence is rebuilt.
        self.recompute_sc(tree, labeling);
        Ok(InsertReport::clean())
    }

    fn on_delete(&mut self, tree: &XmlTree, labeling: &mut Labeling<PrimeLabel>, node: NodeId) {
        for d in tree.preorder_from(node) {
            if let Some(l) = labeling.remove(d) {
                self.sc_order.remove(&l.prime);
            }
        }
    }

    fn cmp_doc(&self, a: &PrimeLabel, b: &PrimeLabel) -> Ordering {
        let oa = self.sc_order.get(&a.prime);
        let ob = self.sc_order.get(&b.prime);
        oa.cmp(&ob)
    }

    fn relation(&self, rel: Relation, a: &PrimeLabel, b: &PrimeLabel) -> Option<bool> {
        // Divisibility tests divide — the scheme's documented cost.
        match rel {
            Relation::AncestorDescendant => {
                Some(a.product < b.product && b.product.is_multiple_of(&a.product))
            }
            Relation::ParentChild => {
                Some(a.product.mul_small(b.prime) == b.product && a.prime != b.prime)
            }
            Relation::Sibling => {
                if a.prime == b.prime || a.prime == 1 || b.prime == 1 {
                    return Some(false);
                }
                let (qa, ra) = a.product.divrem(&BigUint::from_u64(a.prime));
                let (qb, rb) = b.product.divrem(&BigUint::from_u64(b.prime));
                Some(ra.is_zero() && rb.is_zero() && qa == qb)
            }
        }
    }

    fn level(&self, _a: &PrimeLabel) -> Option<u32> {
        None
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::figure1_document;
    use xupd_xmldom::NodeKind;

    #[test]
    fn divisibility_gives_ancestry() {
        let tree = figure1_document();
        let mut scheme = Prime::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                let (lu, lv) = (labeling.req(u).unwrap(), labeling.req(v).unwrap());
                assert_eq!(
                    scheme.relation(Relation::AncestorDescendant, lu, lv),
                    Some(tree.is_ancestor(u, v)),
                    "{u} vs {v}"
                );
                assert_eq!(
                    scheme.relation(Relation::ParentChild, lu, lv),
                    Some(tree.parent(v) == Some(u))
                );
                let sib = tree.parent(u).is_some() && tree.parent(u) == tree.parent(v);
                assert_eq!(scheme.relation(Relation::Sibling, lu, lv), Some(sib));
            }
        }
    }

    #[test]
    fn labels_persist_under_insertion_order_follows_sc() {
        let mut tree = figure1_document();
        let mut scheme = Prime::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let snapshot: Vec<_> = tree
            .ids_in_doc_order()
            .into_iter()
            .map(|n| (n, labeling.req(n).unwrap().clone()))
            .collect();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        for _ in 0..5 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(first, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty(), "labels never change");
        }
        for (n, old) in snapshot {
            assert_eq!(labeling.req(n).unwrap(), &old);
        }
        // order reflects the rebuilt congruence
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn sc_order_table_golden() {
        // The congruence table is a BTreeMap so its iteration order is the
        // ascending prime sequence, independent of insertion order or any
        // hasher. Pin the full table for Figure 1: primes are handed out
        // in preorder (root keeps 1), orders are preorder ranks over all
        // sixteen nodes (document root, ten labelled nodes, five texts).
        let tree = figure1_document();
        let mut scheme = Prime::new();
        let _labeling = scheme.label_tree(&tree).unwrap();
        let table: Vec<(u64, u64)> = scheme.sc_order.iter().map(|(&p, &o)| (p, o)).collect();
        assert_eq!(
            table,
            vec![
                (1, 0),
                (2, 1),
                (3, 2),
                (5, 3),
                (7, 4),
                (11, 5),
                (13, 6),
                (17, 7),
                (19, 8),
                (23, 9),
                (29, 10),
                (31, 11),
                (37, 12),
                (41, 13),
                (43, 14),
                (47, 15),
            ]
        );
    }

    #[test]
    fn products_outgrow_u64_down_a_deep_path() {
        let mut tree = xupd_xmldom::XmlTree::new();
        let mut cur = tree.root();
        for i in 0..25 {
            let n = tree.create(NodeKind::element(format!("d{i}")));
            tree.append_child(cur, n).unwrap();
            cur = n;
        }
        let mut scheme = Prime::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        assert!(
            labeling.req(cur).unwrap().product.bit_len() > 64,
            "deep products need the BigUint substrate"
        );
    }
}
