//! QED∘Containment — the §4 orthogonality claim as a first-class scheme.
//!
//! "The QED labelling scheme is orthogonal to the different
//! classifications of labelling schemes" (§4): its quaternary codes can
//! replace the integer begin/end positions of a containment scheme
//! (§3.1.1). The result keeps the containment family's query algebra —
//! ancestor by interval containment, document order by begin position,
//! parent-child via a stored level — while completely escaping the
//! family's fatal weakness: because a fresh code always exists strictly
//! between any two codes, insertions never relabel and never overflow.
//!
//! Not a Figure 7 row (the paper discusses the composition but grades
//! only the base schemes); included as an extension so the framework can
//! measure what the composition actually buys.

use std::cmp::Ordering;
use xupd_labelcore::quaternary::{bulk_cdqs, qinsert, QCode};
use xupd_labelcore::{
    Compliance, EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A containment label whose begin/end positions are QED codes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QRegion {
    /// Region begin code.
    pub begin: QCode,
    /// Region end code.
    pub end: QCode,
    /// Nesting depth (document root = 0).
    pub level: u32,
}

impl Label for QRegion {
    fn size_bits(&self) -> u64 {
        self.begin.size_bits() + self.end.size_bits() + 32
    }

    fn display(&self) -> String {
        format!("[{},{})@{}", self.begin, self.end, self.level)
    }
}

/// The QED∘Containment scheme.
#[derive(Debug, Clone, Default)]
pub struct QedContainment {
    stats: SchemeStats,
}

impl QedContainment {
    /// A fresh composed scheme.
    pub fn new() -> Self {
        QedContainment::default()
    }
}

impl LabelingScheme for QedContainment {
    type Label = QRegion;

    fn name(&self) -> &'static str {
        "QED∘Containment"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "QED∘Containment",
            citation: "[14]+[9]",
            order: OrderKind::Global,
            encoding: EncodingRep::Variable,
            // Not a Figure 7 row; declared from the composition's design:
            // containment query algebra + QED update algebra.
            declared: [
                Compliance::Full,    // Persistent (between-codes always exist)
                Compliance::Partial, // XPath (ancestor + parent; no sibling)
                Compliance::Full,    // Level (stored)
                Compliance::Full,    // Overflow (separator storage)
                Compliance::Full,    // Orthogonal (it IS the composition)
                Compliance::None,    // Compact (two codes per node + skew growth)
                Compliance::None,    // Division (CDQS bulk spreading divides)
                Compliance::None,    // Recursion (CDQS bulk is recursive)
            ],
            in_figure7: false,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<QRegion>, TreeError> {
        // 2 positions per node, drawn from the compact bulk generator in
        // one depth-first pass.
        let mut labeling = Labeling::with_capacity_for(tree);
        let mut positions = bulk_cdqs(2 * tree.len(), &mut self.stats).into_iter();
        let mut stack: Vec<(NodeId, QCode)> = Vec::new();
        // iterative DFS with explicit open/close events
        enum Ev {
            Open(NodeId),
            Close(NodeId),
        }
        let mut events = vec![Ev::Open(tree.root())];
        while let Some(ev) = events.pop() {
            match ev {
                Ev::Open(n) => {
                    let begin = positions
                        .next()
                        .ok_or_else(|| TreeError::Invariant("position stream exhausted".into()))?;
                    stack.push((n, begin));
                    events.push(Ev::Close(n));
                    let children: Vec<NodeId> = tree.children(n).collect();
                    for c in children.into_iter().rev() {
                        events.push(Ev::Open(c));
                    }
                }
                Ev::Close(n) => {
                    let (id, begin) = stack
                        .pop()
                        .ok_or_else(|| TreeError::Invariant("unbalanced close event".into()))?;
                    debug_assert_eq!(id, n);
                    let end = positions
                        .next()
                        .ok_or_else(|| TreeError::Invariant("position stream exhausted".into()))?;
                    labeling.set(
                        n,
                        QRegion {
                            begin,
                            end,
                            level: tree.depth(n),
                        },
                    );
                }
            }
        }
        Ok(labeling)
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<QRegion>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        // unlabelled neighbours belong to the same graft batch: absent
        let left = match tree.prev_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => l.end.clone(),
            None => labeling.req(parent)?.begin.clone(),
        };
        let right = match tree.next_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => Some(l.begin.clone()),
            None => Some(labeling.req(parent)?.end.clone()),
        };
        let begin = qinsert(Some(&left), right.as_ref());
        let end = qinsert(Some(&begin), right.as_ref());
        let level = labeling.req(parent)?.level + 1;
        labeling.set(node, QRegion { begin, end, level });
        Ok(InsertReport::clean())
    }

    fn cmp_doc(&self, a: &QRegion, b: &QRegion) -> Ordering {
        a.begin.cmp(&b.begin).then(b.end.cmp(&a.end))
    }

    fn relation(&self, rel: Relation, a: &QRegion, b: &QRegion) -> Option<bool> {
        match rel {
            Relation::AncestorDescendant => Some(a.begin < b.begin && b.end < a.end),
            Relation::ParentChild => {
                Some(a.begin < b.begin && b.end < a.end && b.level == a.level + 1)
            }
            Relation::Sibling => None,
        }
    }

    fn level(&self, a: &QRegion) -> Option<u32> {
        Some(a.level)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::figure1_document;
    use xupd_xmldom::NodeKind;

    #[test]
    fn containment_algebra_matches_ground_truth() {
        let tree = figure1_document();
        let mut scheme = QedContainment::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for w in all.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                let (lu, lv) = (labeling.req(u).unwrap(), labeling.req(v).unwrap());
                assert_eq!(
                    scheme.relation(Relation::AncestorDescendant, lu, lv),
                    Some(tree.is_ancestor(u, v))
                );
                assert_eq!(
                    scheme.relation(Relation::ParentChild, lu, lv),
                    Some(tree.parent(v) == Some(u))
                );
            }
        }
    }

    #[test]
    fn skewed_storm_never_relabels_nor_overflows() {
        // The §4 payoff: a containment-family scheme that survives the
        // §3.1.1 killer workload untouched.
        let mut tree = figure1_document();
        let mut scheme = QedContainment::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        let snapshot: Vec<_> = tree
            .ids_in_doc_order()
            .into_iter()
            .map(|n| (n, labeling.req(n).unwrap().clone()))
            .collect();
        let mut front = first;
        for _ in 0..500 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(front, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty());
            assert!(!rep.overflowed);
            front = x;
        }
        for (n, old) in snapshot {
            assert_eq!(labeling.req(n).unwrap(), &old);
        }
        assert!(labeling.find_duplicate().is_none());
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn level_tracks_depth() {
        let tree = figure1_document();
        let mut scheme = QedContainment::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        for n in tree.ids_in_doc_order() {
            assert_eq!(scheme.level(labeling.req(n).unwrap()), Some(tree.depth(n)));
        }
    }
}
