//! The Vector labelling scheme (Xu, Bao & Ling, DEXA 2007 — \[27\] in the
//! paper).
//!
//! Order labels are `(x, y)` vectors compared by gradient via
//! cross-multiplication (no division — Figure 7's `F` in *Division
//! Comp.*); insertion takes the mediant of the neighbours, so no existing
//! label ever changes and the growth rate under skewed insertion is far
//! slower than QED's (the paper's §4 empirical note, reproduced by the P3
//! growth benchmark).
//!
//! Applied here in its prefix form: a label is the vector path from the
//! root, giving ancestor-descendant by prefix while each component keeps
//! the vector algebra. The paper classifies Vector's *XPath Eval.* as `P`
//! and *Level Enc.* as `N` — the pure order-label form it evaluates
//! carries no structure — so this scheme deliberately reports
//! sibling/level queries as unsupported even though the path form could
//! answer them, keeping the measured matrix aligned with what the
//! published scheme offers.
//!
//! Components exhausting 64 bits (Fibonacci-like zigzag insertion) are
//! detected and renumbered with an overflow event — the paper's open
//! question about Vector's UTF-8 delimiter handling beyond 2²¹ is
//! surfaced by [`xupd_labelcore::VectorCode::exceeds_utf8`].

use std::cmp::Ordering;
use xupd_labelcore::vectorcode::bulk_vector;
use xupd_labelcore::{
    EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats, SmallVec, VectorCode,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// Inline depth of a vector path: components for the 8 shallowest levels
/// live on the stack (deeper paths spill), so per-insert label
/// construction is allocation-free for typical documents.
type VectorPath = SmallVec<VectorCode, 8>;

/// A vector-path label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorLabel {
    components: VectorPath,
}

impl VectorLabel {
    fn root() -> Self {
        VectorLabel {
            components: VectorPath::new(),
        }
    }

    fn child(&self, code: VectorCode) -> Self {
        let mut components = self.components.clone();
        components.push(code);
        VectorLabel { components }
    }

    /// The raw vector components.
    pub fn components(&self) -> &[VectorCode] {
        &self.components
    }

    fn own(&self) -> Option<&VectorCode> {
        self.components.last()
    }

    fn is_strict_prefix_of(&self, other: &VectorLabel) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }
}

impl PartialOrd for VectorLabel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VectorLabel {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.components.iter().zip(&other.components) {
            match a.cmp_gradient(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.components.len().cmp(&other.components.len())
    }
}

impl Label for VectorLabel {
    fn size_bits(&self) -> u64 {
        self.components.iter().map(|c| c.size_bits()).sum()
    }

    fn display(&self) -> String {
        if self.components.is_empty() {
            return "∅".to_string();
        }
        self.components
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// The Vector labelling scheme.
#[derive(Debug, Clone, Default)]
pub struct VectorScheme {
    stats: SchemeStats,
}

impl VectorScheme {
    /// A fresh Vector scheme.
    pub fn new() -> Self {
        VectorScheme::default()
    }

    fn label_children(
        &mut self,
        tree: &XmlTree,
        node: NodeId,
        path: &VectorLabel,
        labeling: &mut Labeling<VectorLabel>,
    ) {
        let n = tree.children(node).count();
        if n == 0 {
            return;
        }
        let codes = bulk_vector(n, &mut self.stats.recursive_calls);
        for (child, code) in tree.children(node).zip(codes) {
            let child_path = path.child(code);
            labeling.set(child, child_path.clone());
            self.label_children(tree, child, &child_path, labeling);
        }
    }
}

impl LabelingScheme for VectorScheme {
    type Label = VectorLabel;

    fn name(&self) -> &'static str {
        "Vector"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "Vector",
            citation: "[27]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Figure 7 row: Hybrid Variable F P N F F F F N
            declared: SchemeDescriptor::declared_from_letters("FPNFFFFN"),
            in_figure7: true,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<VectorLabel>, TreeError> {
        let mut labeling = Labeling::with_capacity_for(tree);
        let root = VectorLabel::root();
        labeling.set(tree.root(), root.clone());
        self.label_children(tree, tree.root(), &root, &mut labeling);
        Ok(labeling)
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<VectorLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        let parent_path = labeling.req(parent)?.clone();
        // unlabelled neighbours belong to the same graft batch: absent
        let left = tree
            .prev_sibling(node)
            .and_then(|s| labeling.get(s))
            .and_then(|l| l.own().copied())
            .unwrap_or(VectorCode::LOW);
        let right = tree
            .next_sibling(node)
            .and_then(|s| labeling.get(s))
            .and_then(|l| l.own().copied())
            .unwrap_or(VectorCode::HIGH);
        match left.mediant(&right) {
            Some(code) => {
                labeling.set(node, parent_path.child(code));
                Ok(InsertReport::clean())
            }
            None => {
                // 64-bit component exhaustion: renumber this sibling list.
                self.stats.overflow_events += 1;
                let n = tree.children(parent).count();
                let codes = bulk_vector(n, &mut self.stats.recursive_calls);
                let mut relabeled = Vec::new();
                for (sib, code) in tree.children(parent).zip(codes) {
                    let new_path = parent_path.child(code);
                    rebase(
                        tree,
                        labeling,
                        sib,
                        new_path,
                        node,
                        &mut relabeled,
                        &mut self.stats,
                    );
                }
                Ok(InsertReport {
                    relabeled,
                    overflowed: true,
                })
            }
        }
    }

    fn cmp_doc(&self, a: &VectorLabel, b: &VectorLabel) -> Ordering {
        a.cmp(b)
    }

    fn relation(&self, rel: Relation, a: &VectorLabel, b: &VectorLabel) -> Option<bool> {
        match rel {
            // The prefix application does give ancestor-descendant; the
            // published order-label scheme stops there (XPath Eval. = P).
            Relation::AncestorDescendant => Some(a.is_strict_prefix_of(b)),
            Relation::ParentChild => None,
            Relation::Sibling => None,
        }
    }

    fn level(&self, _a: &VectorLabel) -> Option<u32> {
        // Level Enc. = N: the evaluated scheme does not expose depth.
        None
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

fn rebase(
    tree: &XmlTree,
    labeling: &mut Labeling<VectorLabel>,
    node: NodeId,
    new_path: VectorLabel,
    skip: NodeId,
    relabeled: &mut Vec<NodeId>,
    stats: &mut SchemeStats,
) {
    let old = labeling.get(node).cloned();
    if old.as_ref() != Some(&new_path) {
        if node != skip && old.is_some() {
            relabeled.push(node);
            stats.relabeled_nodes += 1;
        }
        labeling.set(node, new_path.clone());
    }
    for child in tree.children(node) {
        // unlabelled children belong to an in-flight graft batch
        let Some(own) = labeling.get(child).and_then(|l| l.own().copied()) else {
            continue;
        };
        rebase(
            tree,
            labeling,
            child,
            new_path.child(own),
            skip,
            relabeled,
            stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::figure1_document;
    use xupd_xmldom::{NodeKind, TreeBuilder};

    #[test]
    fn order_and_ancestry_on_figure1() {
        let tree = figure1_document();
        let mut scheme = VectorScheme::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for w in all.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                assert_eq!(
                    scheme.relation(
                        Relation::AncestorDescendant,
                        labeling.req(u).unwrap(),
                        labeling.req(v).unwrap()
                    ),
                    Some(tree.is_ancestor(u, v))
                );
            }
        }
    }

    #[test]
    fn mediant_insertions_never_relabel() {
        let mut tree = figure1_document();
        let mut scheme = VectorScheme::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        let mut front = first;
        for _ in 0..1000 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(front, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty());
            assert!(!rep.overflowed);
            front = x;
        }
        assert_eq!(scheme.stats().relabeled_nodes, 0);
        assert!(labeling.find_duplicate().is_none());
    }

    #[test]
    fn skewed_growth_is_much_slower_than_qed() {
        // The paper (§4/§5): "under skewed insertions … the vector label
        // growth rate is much slower than QED under similar conditions".
        use crate::prefix::qed::Qed;
        let build = || TreeBuilder::new().open("r").leaf("a", "").close().finish();
        let mut tv = build();
        let mut tq = build();
        let mut vs = VectorScheme::new();
        let mut qs = Qed::new();
        let mut lv = vs.label_tree(&tv).unwrap();
        let mut lq = qs.label_tree(&tq).unwrap();
        let fv = {
            let re = tv.document_element().unwrap();
            tv.first_child(re).unwrap()
        };
        let fq = {
            let re = tq.document_element().unwrap();
            tq.first_child(re).unwrap()
        };
        let (mut frontv, mut frontq) = (fv, fq);
        for _ in 0..300 {
            let xv = tv.create(NodeKind::element("x"));
            tv.insert_before(frontv, xv).unwrap();
            vs.on_insert(&tv, &mut lv, xv).unwrap();
            frontv = xv;
            let xq = tq.create(NodeKind::element("x"));
            tq.insert_before(frontq, xq).unwrap();
            qs.on_insert(&tq, &mut lq, xq).unwrap();
            frontq = xq;
        }
        let vbits = lv.req(frontv).unwrap().size_bits();
        let qbits = lq.req(frontq).unwrap().size_bits();
        assert!(
            vbits * 4 < qbits,
            "vector {vbits} bits should be ≪ qed {qbits} bits"
        );
    }

    #[test]
    fn zigzag_exhaustion_triggers_overflow_and_recovers() {
        let mut tree = TreeBuilder::new()
            .open("r")
            .leaf("a", "")
            .leaf("b", "")
            .close()
            .finish();
        let mut scheme = VectorScheme::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let re = tree.document_element().unwrap();
        // Alternating nested insertion (always between the two newest
        // nodes) grows components Fibonacci-fast.
        let mut left = tree.first_child(re).unwrap();
        let mut right = tree.next_sibling(left).unwrap();
        let mut overflowed = false;
        for i in 0..300 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_after(left, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            if rep.overflowed {
                overflowed = true;
                break;
            }
            if i % 2 == 0 {
                right = x;
            } else {
                left = x;
            }
            let _ = right;
        }
        assert!(overflowed, "u64 components must exhaust under zigzag");
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }
}
