//! Prefix labelling schemes (§3.1.2 of the paper): a node's label is its
//! parent's label plus a positional sibling code; ancestor-descendant is a
//! prefix test, document order is hybrid (local codes composed along the
//! root path).

pub mod cdbs;
pub mod cdqs;
pub mod comd;
pub mod dewey;
pub mod dln;
pub mod improved_binary;
pub mod lsdx;
pub mod ordpath;
pub mod path;
pub mod qed;

pub use path::{CodeOutcome, PathLabel, PrefixScheme, SiblingAlgebra};
