//! LSDX (Duong & Zhang, ADC 2005 — \[7\] in the paper).
//!
//! Labels combine the node's level with letter-string positional
//! identifiers (Figure 5: `0a`, `1a.b`, `2ab.b`, …). During construction
//! the first child uses `b` (reserving `a` for insertions before it);
//! after `z` comes `zb`; prepending prefixes an `a`; appending increments
//! the last letter; between-insertion extends the left neighbour.
//!
//! §3.1.2 records that LSDX "do\[es\] not always produce unique node labels
//! for several corner-case update scenarios and therefore \[is\] unsuitable
//! for use as \[a\] dynamic labelling scheme" (collisions catalogued by Sans
//! & Laurent, PVLDB 2008 — \[19\]). This implementation is deliberately
//! faithful to the published rules, so those collisions are *reproducible*
//! — see `collision_corner_case` below and the framework's uniqueness
//! checker.
//!
//! LSDX labels are also not persistent across deletions: the paper notes
//! "labels are not persistent and may be reassigned upon deletion", which
//! falls out naturally here because the generation rules regenerate the
//! same strings.

use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use xupd_labelcore::{EncodingRep, OrderKind, SchemeDescriptor, SchemeStats};

/// Increment a positional identifier for append/bulk: bump the final
/// letter, or append `b` after a `z`.
pub(crate) fn increment(s: &str) -> String {
    let mut out = s.to_string();
    match out.pop() {
        Some('z') => {
            out.push('z');
            out.push('b');
        }
        Some(c) => out.push((c as u8 + 1) as char),
        None => out.push('b'),
    }
    out
}

/// The published LSDX generation rules shared by LSDX and Com-D.
pub(crate) fn lsdx_bulk(n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut cur = String::new();
    for _ in 0..n {
        cur = increment(&cur);
        out.push(cur.clone());
    }
    out
}

/// The published LSDX insertion rules. Returns a positional identifier
/// that the naive rules produce — which in corner cases **collides** with
/// an existing neighbour, exactly the flaw the paper reports.
pub(crate) fn lsdx_insert(left: Option<&String>, right: Option<&String>) -> String {
    match (left, right) {
        (None, None) => "b".to_string(),
        // append after last: lexicographically increment the last letter
        (Some(l), None) => increment(l),
        // before first: prefix an `a`
        (None, Some(r)) => format!("a{r}"),
        // between: grow from the left neighbour so the result sorts after
        // it; the naive fallback can collide with `right`.
        (Some(l), Some(r)) => {
            let bumped = increment(l);
            if &bumped < r {
                return bumped;
            }
            // "greater than its left neighbour and less than its right
            // neighbour" — extend left with `b`. When right IS l+"b" the
            // rule set offers nothing strictly between: the collision.
            format!("{l}b")
        }
    }
}

/// The LSDX sibling algebra (letter-string codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsdxAlgebra {
    /// Longest positional identifier the stored length field can
    /// describe; beyond it the sibling list is renumbered (§4 overflow,
    /// which hits variable-length schemes through their length fields).
    pub max_chars: usize,
}

impl Default for LsdxAlgebra {
    fn default() -> Self {
        LsdxAlgebra { max_chars: 255 }
    }
}

impl SiblingAlgebra for LsdxAlgebra {
    type Code = String;

    fn name(&self) -> &'static str {
        "LSDX"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "LSDX",
            citation: "[7]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Figure 7 row: Hybrid Variable N F F N N N F F
            declared: SchemeDescriptor::declared_from_letters("NFFNNNFF"),
            in_figure7: true,
        }
    }

    fn bulk(&mut self, n: usize, _stats: &mut SchemeStats) -> Vec<String> {
        lsdx_bulk(n)
    }

    fn insert(
        &mut self,
        left: Option<&String>,
        right: Option<&String>,
        _stats: &mut SchemeStats,
    ) -> CodeOutcome<String> {
        let code = lsdx_insert(left, right);
        if code.len() > self.max_chars {
            CodeOutcome::RenumberAll
        } else {
            CodeOutcome::Fresh(code)
        }
    }

    fn code_bits(code: &String) -> u64 {
        8 * code.len() as u64
    }

    fn code_display(code: &String) -> String {
        code.clone()
    }

    fn path_display(path: &[String]) -> String {
        lsdx_path_display(path)
    }
}

/// Paper-style rendering: `{level}{ancestor ids}.{own id}` (Figure 5's
/// `2ab.b`). The document root (empty path) renders as the paper's `0a`.
pub(crate) fn lsdx_path_display(path: &[String]) -> String {
    match path.len() {
        0 => "0a".to_string(),
        n => {
            let level = n;
            let prefix: String = std::iter::once("a".to_string())
                .chain(path[..n - 1].iter().cloned())
                .collect();
            format!("{level}{prefix}.{}", path[n - 1])
        }
    }
}

/// The LSDX labelling scheme.
pub type Lsdx = PrefixScheme<LsdxAlgebra>;

impl Lsdx {
    /// A fresh LSDX scheme.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(LsdxAlgebra::default())
    }
}

impl Default for Lsdx {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_labelcore::{Label, LabelingScheme};
    use xupd_xmldom::sample::figure3_shape;
    use xupd_xmldom::{NodeKind, XmlTree};

    #[test]
    fn bulk_letters_follow_the_paper() {
        assert_eq!(lsdx_bulk(4), ["b", "c", "d", "e"]);
        // after z comes zb
        let codes = lsdx_bulk(30);
        assert_eq!(codes[24], "z");
        assert_eq!(codes[25], "zb");
        assert_eq!(codes[26], "zc");
        for w in codes.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn figure5_insertion_rules() {
        // before first child b → ab  (figure's 2ab.ab from 2ab.b)
        assert_eq!(lsdx_insert(None, Some(&"b".into())), "ab");
        // after last child b → c    (figure's 2ac.c from 2ac.b)
        assert_eq!(lsdx_insert(Some(&"b".into()), None), "c");
        // between b and c → bb      (figure's 2ad.bb between .b and .c)
        assert_eq!(lsdx_insert(Some(&"b".into()), Some(&"c".into())), "bb");
    }

    #[test]
    fn figure5_tree_labels() {
        // Figure 5's initial tree: root 0a, children 1a.b / 1a.c / 1a.d.
        let (tree, nodes) = figure3_shape();
        let mut scheme = Lsdx::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        // the element root is the document root's only child: id "b"
        let root_elem = nodes[0];
        let kids: Vec<String> = tree
            .children(root_elem)
            .map(|c| labeling.req(c).unwrap().path.own_code().unwrap().clone())
            .collect();
        assert_eq!(kids, ["b", "c", "d"]);
    }

    #[test]
    fn collision_corner_case_reproduced() {
        // b, c siblings. Insert between → bb. Insert between b and bb:
        // the published rules produce bb again — the uniqueness violation
        // §3.1.2 disqualifies LSDX for.
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let a = tree.create(NodeKind::element("a"));
        let b = tree.create(NodeKind::element("b"));
        tree.append_child(p, a).unwrap();
        tree.append_child(p, b).unwrap();
        let mut scheme = Lsdx::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let x = tree.create(NodeKind::element("x"));
        tree.insert_after(a, x).unwrap();
        scheme.on_insert(&tree, &mut labeling, x).unwrap();
        assert_eq!(labeling.req(x).unwrap().path.own_code().unwrap(), "bb");
        let y = tree.create(NodeKind::element("y"));
        tree.insert_after(a, y).unwrap();
        scheme.on_insert(&tree, &mut labeling, y).unwrap();
        assert_eq!(
            labeling.req(y).unwrap().path.own_code().unwrap(),
            "bb",
            "naive rules reproduce the published collision"
        );
        assert!(
            labeling.find_duplicate().is_some(),
            "uniqueness violated, as the paper reports"
        );
    }

    #[test]
    fn paper_style_display() {
        let (tree, nodes) = figure3_shape();
        let mut scheme = Lsdx::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        // grandchild display uses level + ancestor ids + dot + own id
        let root_elem = nodes[0];
        let first_child = tree.children(root_elem).next().unwrap();
        let grandchild = tree.children(first_child).next().unwrap();
        let display = labeling.req(grandchild).unwrap().display();
        assert_eq!(display, "3abb.b");
        assert_eq!(labeling.req(root_elem).unwrap().display(), "1a.b");
    }

    #[test]
    fn level_matches_depth() {
        let (tree, _) = figure3_shape();
        let mut scheme = Lsdx::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        for id in tree.ids_in_doc_order() {
            assert_eq!(scheme.level(labeling.req(id).unwrap()), Some(tree.depth(id)));
        }
    }
}
