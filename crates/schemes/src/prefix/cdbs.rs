//! CDBS — Compact Dynamic Binary String (Li, Ling & Hu, ICDE 2006 —
//! \[15\] in the paper; a §6/§4 extension, not a Figure 7 row).
//!
//! "A highly compact adaptation of the ImprovedBinary labelling scheme
//! with more efficient update costs. However, these improvements were made
//! possible through the use of fixed length bit encoding of the labels and
//! thus, are subject to the overflow problem" (§4). We model exactly that:
//! the compact binary algebra of ImprovedBinary with an even-spread bulk
//! assignment, stored in fixed-width cells — codes outgrowing the cell
//! trigger an overflow relabel.

use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use xupd_labelcore::bitstring::{between, BitString};
use xupd_labelcore::{Compliance, EncodingRep, OrderKind, SchemeDescriptor, SchemeStats};

/// Default fixed storage cell per code, in bits.
const DEFAULT_CELL_BITS: usize = 32;

/// The CDBS sibling algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdbsAlgebra {
    /// Fixed cell width; codes longer than this overflow.
    pub cell_bits: usize,
}

impl Default for CdbsAlgebra {
    fn default() -> Self {
        CdbsAlgebra {
            cell_bits: DEFAULT_CELL_BITS,
        }
    }
}

impl SiblingAlgebra for CdbsAlgebra {
    type Code = BitString;

    fn name(&self) -> &'static str {
        "CDBS"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "CDBS",
            citation: "[15]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Fixed,
            // Not a Figure 7 row; declared from the §4 prose: persistent
            // until overflow (P), full XPath/level, subject to overflow
            // (N), not orthogonal (binary-specific), compact (F), one
            // division per even spread (N), single pass (F).
            declared: [
                Compliance::Partial, // Persistent: until the cell overflows
                Compliance::Full,    // XPath evaluations
                Compliance::Full,    // Level encoding
                Compliance::None,    // Overflow problem
                Compliance::None,    // Orthogonal
                Compliance::Full,    // Compact encoding
                Compliance::None,    // Division computation
                Compliance::Full,    // Recursion (streaming bulk)
            ],
            in_figure7: false,
        }
    }

    fn bulk(&mut self, n: usize, stats: &mut SchemeStats) -> Vec<BitString> {
        // Even spreading over the smallest binary length whose code space
        // holds n codes: codes are the length-L bitstrings ending in 1,
        // evenly spaced by rank (one division per code — the CDBS papers'
        // compactness trick). 2^(L-1) codes of length L end in 1.
        if n == 0 {
            return Vec::new();
        }
        let mut len = 1usize;
        let mut cap: u128 = 1;
        while cap < n as u128 {
            len += 1;
            cap <<= 1;
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            stats.divisions += 1;
            let rank = (i as u128 * cap) / n as u128;
            // Build length-`len` code: (len-1) free bits from rank, then 1.
            let mut code = BitString::empty();
            for pos in (0..len - 1).rev() {
                code.push(((rank >> pos) & 1) as u8);
            }
            code.push(1);
            out.push(code);
        }
        out
    }

    fn insert(
        &mut self,
        left: Option<&BitString>,
        right: Option<&BitString>,
        stats: &mut SchemeStats,
    ) -> CodeOutcome<BitString> {
        if left.is_some() && right.is_some() {
            stats.divisions += 1;
        }
        let code = between(left, right);
        if code.bit_len() > self.cell_bits {
            CodeOutcome::RenumberAll
        } else {
            CodeOutcome::Fresh(code)
        }
    }

    fn code_bits(_code: &BitString) -> u64 {
        // Fixed-width cell regardless of code length — the whole point of
        // CDBS and the root of its overflow problem.
        DEFAULT_CELL_BITS as u64
    }

    fn code_display(code: &BitString) -> String {
        code.to_string()
    }
}

/// The CDBS labelling scheme.
pub type Cdbs = PrefixScheme<CdbsAlgebra>;

impl Cdbs {
    /// A fresh CDBS scheme with 32-bit cells.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(CdbsAlgebra::default())
    }

    /// A scheme with custom cell width (failure-injection knob).
    pub fn with_cell_bits(cell_bits: usize) -> Self {
        PrefixScheme::from_algebra(CdbsAlgebra { cell_bits })
    }
}

impl Default for Cdbs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_labelcore::LabelingScheme;
    use xupd_xmldom::{NodeKind, TreeBuilder};

    #[test]
    fn bulk_codes_sorted_unique_end_in_one() {
        let mut a = CdbsAlgebra::default();
        let mut stats = SchemeStats::default();
        for n in [1usize, 2, 3, 7, 8, 9, 100] {
            let codes = a.bulk(n, &mut stats);
            assert_eq!(codes.len(), n);
            for w in codes.windows(2) {
                assert!(w[0] < w[1]);
            }
            for c in &codes {
                assert_eq!(c.last(), Some(1));
            }
        }
    }

    #[test]
    fn overflow_fires_when_cell_exhausted() {
        let mut tree = TreeBuilder::new().open("r").leaf("a", "").close().finish();
        let mut scheme = Cdbs::with_cell_bits(10);
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let root_elem = tree.document_element().unwrap();
        let first = tree.children(root_elem).next().unwrap();
        let mut front = first;
        let mut overflowed = false;
        for _ in 0..30 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(front, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            front = x;
            if rep.overflowed {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "fixed cells must overflow under skew");
    }

    #[test]
    fn bulk_is_compact_fixed_cells() {
        let mut b = TreeBuilder::new().open("r");
        for i in 0..100 {
            b = b.leaf(format!("c{i}"), "");
        }
        let tree = b.close().finish();
        let mut scheme = Cdbs::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        // every label is a whole number of fixed 32-bit cells
        for (_, l) in labeling.iter() {
            assert_eq!(xupd_labelcore::Label::size_bits(l) % 32, 0);
        }
    }
}
