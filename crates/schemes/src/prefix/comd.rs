//! Com-D — Compressed Dynamic Labelling Scheme (Duong & Zhang, OTM 2008 —
//! \[8\] in the paper).
//!
//! LSDX's authors' own fix for its label-size growth: "compress
//! reoccurring letters within a label by prefixing the repetitive
//! letter(s) with an integer indicating the number of repetitions. For
//! example, the positional identifier `aaaaabcbcbcdddde` would be
//! rewritten as `5a3(bc)4de`" (§3.1.2). The generation algebra is LSDX's;
//! only the storage model changes — so Com-D inherits LSDX's collision
//! corner cases too.

use super::lsdx::{lsdx_bulk, lsdx_insert, lsdx_path_display};
use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use xupd_labelcore::{Compliance, EncodingRep, OrderKind, SchemeDescriptor, SchemeStats};

/// Run-length compress a positional identifier the Com-D way: single
/// letters and two-letter patterns are both candidates; a run shorter than
/// 2 (or 3 for patterns, where `3(bc)` only pays off at three repeats) is
/// left alone.
pub fn compress(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // try a two-letter pattern run first (e.g. bcbcbc → 3(bc))
        if i + 1 < chars.len() && chars[i] != chars[i + 1] {
            let (a, b) = (chars[i], chars[i + 1]);
            let mut reps = 1;
            let mut j = i + 2;
            while j + 1 < chars.len() && chars[j] == a && chars[j + 1] == b {
                reps += 1;
                j += 2;
            }
            if reps >= 3 {
                out.push_str(&format!("{reps}({a}{b})"));
                i = j;
                continue;
            }
        }
        // single-letter run
        let c = chars[i];
        let mut reps = 1;
        while i + reps < chars.len() && chars[i + reps] == c {
            reps += 1;
        }
        if reps >= 2 {
            out.push_str(&format!("{reps}{c}"));
        } else {
            out.push(c);
        }
        i += reps;
    }
    out
}

/// The Com-D sibling algebra: LSDX codes, compressed storage accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComDAlgebra {
    /// Longest (uncompressed) positional identifier before renumbering.
    pub max_chars: usize,
}

impl Default for ComDAlgebra {
    fn default() -> Self {
        ComDAlgebra { max_chars: 255 }
    }
}

impl SiblingAlgebra for ComDAlgebra {
    type Code = String;

    fn name(&self) -> &'static str {
        "Com-D"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "Com-D",
            citation: "[8]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Not a Figure 7 row. LSDX's row with Compact upgraded to P
            // (compression constrains, but does not bound, growth).
            declared: [
                Compliance::None,    // Persistent (reassigned on delete)
                Compliance::Full,    // XPath
                Compliance::Full,    // Level
                Compliance::None,    // Overflow
                Compliance::None,    // Orthogonal
                Compliance::Partial, // Compact (the compression)
                Compliance::Full,    // Division
                Compliance::Full,    // Recursion
            ],
            in_figure7: false,
        }
    }

    fn bulk(&mut self, n: usize, _stats: &mut SchemeStats) -> Vec<String> {
        lsdx_bulk(n)
    }

    fn insert(
        &mut self,
        left: Option<&String>,
        right: Option<&String>,
        _stats: &mut SchemeStats,
    ) -> CodeOutcome<String> {
        let code = lsdx_insert(left, right);
        if code.len() > self.max_chars {
            CodeOutcome::RenumberAll
        } else {
            CodeOutcome::Fresh(code)
        }
    }

    fn code_bits(code: &String) -> u64 {
        8 * compress(code).len() as u64
    }

    fn code_display(code: &String) -> String {
        compress(code)
    }

    fn path_display(path: &[String]) -> String {
        lsdx_path_display(path)
    }
}

/// The Com-D labelling scheme.
pub type ComD = PrefixScheme<ComDAlgebra>;

impl ComD {
    /// A fresh Com-D scheme.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(ComDAlgebra::default())
    }
}

impl Default for ComD {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::lsdx::Lsdx;
    use xupd_labelcore::LabelingScheme;
    use xupd_xmldom::{NodeKind, TreeBuilder};

    #[test]
    fn papers_compression_example() {
        assert_eq!(compress("aaaaabcbcbcdddde"), "5a3(bc)4de");
    }

    #[test]
    fn compression_cases() {
        assert_eq!(compress(""), "");
        assert_eq!(compress("b"), "b");
        assert_eq!(compress("bb"), "2b");
        assert_eq!(compress("bcb"), "bcb");
        assert_eq!(compress("bcbcbc"), "3(bc)");
        assert_eq!(compress("zzzzzz"), "6z");
        assert_eq!(compress("abab"), "abab", "two repeats don't pay off");
    }

    #[test]
    fn comd_is_smaller_than_lsdx_under_skewed_prepends() {
        // Repeated before-first insertion gives identifiers aa…ab, which
        // compress to ka-style runs.
        let mut tree = TreeBuilder::new().open("r").leaf("x", "").close().finish();
        let root_elem = tree.document_element().unwrap();
        let first = tree.children(root_elem).next().unwrap();
        let mut lsdx = Lsdx::new();
        let mut comd = ComD::new();
        let mut ll = lsdx.label_tree(&tree).unwrap();
        let mut lc = comd.label_tree(&tree).unwrap();
        let mut front = first;
        for _ in 0..50 {
            let n = tree.create(NodeKind::element("n"));
            tree.insert_before(front, n).unwrap();
            lsdx.on_insert(&tree, &mut ll, n).unwrap();
            comd.on_insert(&tree, &mut lc, n).unwrap();
            front = n;
        }
        assert!(
            lc.total_bits() < ll.total_bits(),
            "com-d {} bits vs lsdx {} bits",
            lc.total_bits(),
            ll.total_bits()
        );
    }
}
