//! ImprovedBinary (Li & Ling, DASFAA 2005 — \[13\] in the paper).
//!
//! Binary-string positional identifiers assigned by the recursive
//! `Labelling` algorithm with `AssignMiddleSelfLabel`; all three insertion
//! cases of §3.1.2 produce fresh codes, so labels are persistent — but the
//! scheme stores each code's length and is therefore still subject to the
//! §4 overflow problem once the length field saturates. We model a
//! configurable length-field width (default 8 bits ⇒ codes longer than
//! 255 bits overflow), after which the sibling list must be relabelled.

use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use xupd_labelcore::bitstring::{between, bulk_binary, BitString};
use xupd_labelcore::{EncodingRep, OrderKind, SchemeDescriptor, SchemeStats};

/// Maximum code length representable by the stored length field, in bits.
const DEFAULT_LENGTH_FIELD_CAPACITY: usize = 255;

/// The ImprovedBinary sibling algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImprovedBinaryAlgebra {
    /// Codes longer than this overflow the stored length field and force a
    /// sibling-list relabel (§4).
    pub max_code_bits: usize,
}

impl Default for ImprovedBinaryAlgebra {
    fn default() -> Self {
        ImprovedBinaryAlgebra {
            max_code_bits: DEFAULT_LENGTH_FIELD_CAPACITY,
        }
    }
}

impl SiblingAlgebra for ImprovedBinaryAlgebra {
    type Code = BitString;

    fn name(&self) -> &'static str {
        "ImprovedBinary"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "ImprovedBinary",
            citation: "[13]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Figure 7 row: Hybrid Variable F F F N N N N N
            declared: SchemeDescriptor::declared_from_letters("FFFNNNNN"),
            in_figure7: true,
        }
    }

    fn bulk(&mut self, n: usize, stats: &mut SchemeStats) -> Vec<BitString> {
        bulk_binary(n, stats)
    }

    fn insert(
        &mut self,
        left: Option<&BitString>,
        right: Option<&BitString>,
        stats: &mut SchemeStats,
    ) -> CodeOutcome<BitString> {
        if left.is_some() && right.is_some() {
            // AssignMiddleSelfLabel performs the value-midpoint
            // computation the original formulation divides for.
            stats.divisions += 1;
        }
        let code = between(left, right);
        if code.bit_len() > self.max_code_bits {
            CodeOutcome::RenumberAll
        } else {
            CodeOutcome::Fresh(code)
        }
    }

    fn code_bits(code: &BitString) -> u64 {
        // The code itself plus an 8-bit stored length field (the
        // variable-length storage model of §4).
        code.bit_len() as u64 + 8
    }

    fn overflow_audit_algebra(&self) -> Option<Self> {
        Some(ImprovedBinaryAlgebra { max_code_bits: 64 })
    }

    fn code_display(code: &BitString) -> String {
        code.to_string()
    }
}

/// The ImprovedBinary labelling scheme.
pub type ImprovedBinary = PrefixScheme<ImprovedBinaryAlgebra>;

impl ImprovedBinary {
    /// A fresh ImprovedBinary scheme with the default length-field
    /// capacity.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(ImprovedBinaryAlgebra::default())
    }

    /// A scheme whose length field saturates at `max_code_bits` — the
    /// failure-injection knob for the overflow checker.
    pub fn with_max_code_bits(max_code_bits: usize) -> Self {
        PrefixScheme::from_algebra(ImprovedBinaryAlgebra { max_code_bits })
    }
}

impl Default for ImprovedBinary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_labelcore::{Label, LabelingScheme};
    use xupd_xmldom::sample::figure3_shape;
    use xupd_xmldom::{NodeKind, XmlTree};

    #[test]
    fn root_children_match_figure6_scheme() {
        // Figure 6's root has children 01, 0101, 011.
        let (tree, nodes) = figure3_shape();
        let mut scheme = ImprovedBinary::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let root_elem = nodes[0];
        let kids: Vec<String> = tree
            .children(root_elem)
            .map(|c| labeling.req(c).unwrap().path.own_code().unwrap().to_string())
            .collect();
        assert_eq!(kids, ["01", "0101", "011"]);
    }

    #[test]
    fn insertions_are_persistent() {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let a = tree.create(NodeKind::element("a"));
        let b = tree.create(NodeKind::element("b"));
        tree.append_child(p, a).unwrap();
        tree.append_child(p, b).unwrap();
        let mut scheme = ImprovedBinary::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let before_a = labeling.req(a).unwrap().clone();
        let before_b = labeling.req(b).unwrap().clone();
        for _ in 0..10 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_after(a, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty());
            assert!(!rep.overflowed);
        }
        assert_eq!(labeling.req(a).unwrap(), &before_a);
        assert_eq!(labeling.req(b).unwrap(), &before_b);
        assert_eq!(scheme.stats().relabeled_nodes, 0);
    }

    #[test]
    fn length_field_overflow_forces_relabel() {
        // Shrink the length field so the overflow problem (§4) fires
        // quickly under skewed insertion before the first child.
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let first = tree.create(NodeKind::element("a"));
        tree.append_child(p, first).unwrap();
        let mut scheme = ImprovedBinary::with_max_code_bits(12);
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let mut overflowed = false;
        let mut front = first;
        for _ in 0..40 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(front, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            front = x;
            if rep.overflowed {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "1-bit-per-insert growth must hit the cap");
        assert!(scheme.stats().overflow_events > 0);
    }

    #[test]
    fn audit_instance_narrows_the_length_field() {
        let scheme = ImprovedBinary::new();
        let audit = scheme.overflow_audit_instance().expect("IB audits");
        let mut audit = audit;
        assert_eq!(audit.algebra_mut().max_code_bits, 64);
    }

    #[test]
    fn labels_sorted_and_unique_after_random_script() {
        let (mut tree, nodes) = figure3_shape();
        let mut scheme = ImprovedBinary::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        // Deterministic little script: insert around each original node.
        for (i, &n) in nodes.iter().enumerate() {
            let x = tree.create(NodeKind::element("x"));
            if i % 3 == 0 {
                tree.insert_before(n, x).unwrap();
            } else if i % 3 == 1 {
                tree.insert_after(n, x).unwrap();
            } else {
                tree.prepend_child(n, x).unwrap();
            }
            scheme.on_insert(&tree, &mut labeling, x).unwrap();
        }
        assert!(labeling.find_duplicate().is_none());
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap())
                    == std::cmp::Ordering::Less,
                "{} !< {}",
                labeling.req(w[0]).unwrap().display(),
                labeling.req(w[1]).unwrap().display()
            );
        }
    }
}
