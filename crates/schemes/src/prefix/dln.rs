//! DLN — Dynamic Level Numbering (Böhme & Rahm, DIWeb 2004 — \[3\] in the
//! paper).
//!
//! "Conceptually similar to ORDPATH … adopts a fixed bit-length for
//! component values and supports arbitrary insertions through the addition
//! of suffix values between any two consecutive positional identifiers.
//! However, under frequent updates, the fixed label size may overflow"
//! (§3.1.2). A DLN component is a chain of fixed-width sub-ids
//! (`2/1/3` — sublevels separated by `/`); insertion first tries to
//! increment, then to open a sublevel, and renumbers the sibling list when
//! the fixed width is exhausted.

use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use std::fmt;
use xupd_labelcore::{EncodingRep, OrderKind, SchemeDescriptor, SchemeStats, SmallVec};

/// Width of one sub-id in bits (fixed-length encoding). Sub-ids run
/// 1..=2^W − 1; 0 is reserved so an absent sublevel compares below every
/// present one.
const SUB_ID_BITS: u32 = 8;

/// Sub-id chain storage: chains of up to 6 sublevels stay inline, so
/// cloning a typical code during renumbering never allocates.
type DlnSubs = SmallVec<u32, 6>;

/// One DLN component: a chain of fixed-width sub-ids, e.g. `2/1`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DlnCode {
    subs: DlnSubs,
}

impl DlnCode {
    fn single(v: u32) -> Self {
        DlnCode {
            subs: DlnSubs::from_slice(&[v]),
        }
    }

    #[cfg(test)]
    fn chain(subs: &[u32]) -> Self {
        DlnCode {
            subs: DlnSubs::from_slice(subs),
        }
    }

    /// The sub-id chain.
    pub fn subs(&self) -> &[u32] {
        &self.subs
    }
}

impl fmt::Display for DlnCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.subs.iter().map(|s| s.to_string()).collect();
        f.write_str(&parts.join("/"))
    }
}

/// The DLN sibling algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlnAlgebra {
    /// Largest representable sub-id (fixed width ⇒ overflow beyond it).
    pub max_sub_id: u32,
}

impl Default for DlnAlgebra {
    fn default() -> Self {
        DlnAlgebra {
            max_sub_id: (1 << SUB_ID_BITS) - 1,
        }
    }
}

impl DlnAlgebra {
    /// A code strictly between `l` and `r`, or `None` when the encoding
    /// offers no room (the DLN weakness).
    fn mid(&self, l: &DlnCode, r: &DlnCode) -> Option<DlnCode> {
        debug_assert!(l < r);
        // 1) increment the last sub-id of l (sub-id lists are non-empty
        // by construction)
        let mut cand = l.clone();
        if let Some(last) = cand.subs.last_mut() {
            if *last < self.max_sub_id {
                *last += 1;
                if &cand < r {
                    return Some(cand);
                }
            }
        }
        // 2) open a sublevel under l
        let mut cand = l.clone();
        cand.subs.push(1);
        if &cand < r {
            return Some(cand);
        }
        // r <= l/1 means r == l/1 exactly (r > l forces r to extend l);
        // no room at this width.
        None
    }
}

impl SiblingAlgebra for DlnAlgebra {
    type Code = DlnCode;

    fn name(&self) -> &'static str {
        "DLN"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "DLN",
            citation: "[3]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Fixed,
            // Figure 7 row: Hybrid Fixed N F F N N N F F
            declared: SchemeDescriptor::declared_from_letters("NFFNNNFF"),
            in_figure7: true,
        }
    }

    fn bulk(&mut self, n: usize, _stats: &mut SchemeStats) -> Vec<DlnCode> {
        // Streaming single pass; ordinals beyond the fixed width spill
        // into sublevels of the last representable ordinal.
        let mut out = Vec::with_capacity(n);
        let max = u64::from(self.max_sub_id);
        for i in 1..=n as u64 {
            if i <= max {
                out.push(DlnCode::single(i as u32));
            } else {
                // max, max/1, max/2, ..., max/max, max/max/1, ...
                let mut rem = i - max;
                let mut subs = DlnSubs::from_slice(&[self.max_sub_id]);
                while rem > max {
                    subs.push(self.max_sub_id);
                    rem -= max;
                }
                subs.push(rem as u32);
                out.push(DlnCode { subs });
            }
        }
        out
    }

    fn insert(
        &mut self,
        left: Option<&DlnCode>,
        right: Option<&DlnCode>,
        _stats: &mut SchemeStats,
    ) -> CodeOutcome<DlnCode> {
        match (left, right) {
            (None, None) => CodeOutcome::Fresh(DlnCode::single(1)),
            (Some(l), None) => {
                // append: increment the FIRST sub-id when possible, else
                // chain a sublevel on the last representable ordinal.
                let first = l.subs[0];
                if first < self.max_sub_id {
                    CodeOutcome::Fresh(DlnCode::single(first + 1))
                } else {
                    let mut subs = l.subs.clone();
                    if subs.last().is_some_and(|&x| x < self.max_sub_id) {
                        let m = subs.len() - 1;
                        subs[m] += 1;
                        CodeOutcome::Fresh(DlnCode { subs })
                    } else {
                        subs.push(1);
                        CodeOutcome::Fresh(DlnCode { subs })
                    }
                }
            }
            (None, Some(r)) => {
                // prepend: decrement when possible; sub-ids start at 1 and
                // there is nothing below `1`, so prepending before it
                // exhausts the width.
                let first = r.subs[0];
                if first > 1 {
                    CodeOutcome::Fresh(DlnCode::single(first - 1))
                } else {
                    CodeOutcome::RenumberAll
                }
            }
            (Some(l), Some(r)) => match self.mid(l, r) {
                Some(c) => CodeOutcome::Fresh(c),
                None => CodeOutcome::RenumberAll,
            },
        }
    }

    fn code_bits(code: &DlnCode) -> u64 {
        // Fixed width per sub-id plus one continuation bit each (the
        // fixed-length encoding model of the DLN paper).
        code.subs.len() as u64 * (u64::from(SUB_ID_BITS) + 1)
    }

    fn code_display(code: &DlnCode) -> String {
        code.to_string()
    }
}

/// The DLN labelling scheme.
pub type Dln = PrefixScheme<DlnAlgebra>;

impl Dln {
    /// A fresh DLN scheme with 8-bit sub-ids.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(DlnAlgebra::default())
    }

    /// A scheme with a custom sub-id ceiling (failure-injection knob).
    pub fn with_max_sub_id(max_sub_id: u32) -> Self {
        PrefixScheme::from_algebra(DlnAlgebra { max_sub_id })
    }
}

impl Default for Dln {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_labelcore::{Label, LabelingScheme};
    use xupd_xmldom::{NodeKind, TreeBuilder};

    #[test]
    fn mid_prefers_increment_then_sublevel() {
        let a = DlnAlgebra::default();
        // between 2 and 5 → 3
        assert_eq!(
            a.mid(&DlnCode::single(2), &DlnCode::single(5)).unwrap(),
            DlnCode::single(3)
        );
        // between 2 and 3 → 2/1
        assert_eq!(
            a.mid(&DlnCode::single(2), &DlnCode::single(3)).unwrap(),
            DlnCode::chain(&[2, 1])
        );
        // between 2 and 2/1 → dead end (no room at this width)
        assert_eq!(
            a.mid(&DlnCode::single(2), &DlnCode::chain(&[2, 1])),
            None
        );
        // between 2/1 and 3 → 2/2
        assert_eq!(
            a.mid(&DlnCode::chain(&[2, 1]), &DlnCode::single(3))
                .unwrap(),
            DlnCode::chain(&[2, 2])
        );
    }

    #[test]
    fn sublevel_dead_end_renumbers() {
        let mut tree = TreeBuilder::new()
            .open("r")
            .leaf("a", "")
            .leaf("b", "")
            .close()
            .finish();
        let mut scheme = Dln::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let root_elem = tree.document_element().unwrap();
        let a = tree.children(root_elem).next().unwrap();
        // repeatedly insert right after `a`: 1, 2 → 1/1, then between 1
        // and 1/1 → dead end → renumber
        let mut overflowed = false;
        for _ in 0..5 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_after(a, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            if rep.overflowed {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "DLN must hit its sublevel dead end");
        assert!(scheme.stats().overflow_events > 0);
        // after renumbering, order still holds
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                std::cmp::Ordering::Less
            );
        }
    }

    #[test]
    fn bulk_spills_into_sublevels_beyond_width() {
        let mut a = DlnAlgebra { max_sub_id: 3 };
        let mut stats = SchemeStats::default();
        let codes = a.bulk(8, &mut stats);
        let shown: Vec<String> = codes.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            shown,
            ["1", "2", "3", "3/1", "3/2", "3/3", "3/3/1", "3/3/2"]
        );
        for w in codes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn display_renders_dewey_like_paths() {
        let tree = TreeBuilder::new()
            .open("r")
            .open("a")
            .leaf("b", "")
            .close()
            .close()
            .finish();
        let mut scheme = Dln::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let root_elem = tree.document_element().unwrap();
        let a = tree.children(root_elem).next().unwrap();
        let b = tree.children(a).next().unwrap();
        assert_eq!(labeling.req(b).unwrap().display(), "1.1.1");
    }
}
