//! ORDPATH (O'Neil et al., SIGMOD 2004 — \[18\] in the paper).
//!
//! Initial labelling uses positive odd integers only (1, 3, 5, …); even
//! and negative values are reserved for later insertion:
//!
//! * right of all children: rightmost positional identifier + 2
//!   (Figure 4's `1.3.3`);
//! * left of all children: leftmost − 2 (Figure 4's `1.1.-1`);
//! * between two consecutive odd neighbours: *careting in* — the even
//!   number between them, then a fresh odd component (Figure 4's
//!   `1.5.2.1`).
//!
//! A label is a sequence of *groups*, each `even* odd`; the node's level
//! is the number of odd components. Labels are stored in a compressed
//! binary representation; we model its size with a prefix-free
//! length-tag + zig-zag magnitude encoding.

use std::cmp::Ordering;
use xupd_labelcore::{
    Compliance, EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// An ORDPATH label: the flattened component sequence (groups of
/// `even* odd` per level).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrdPathLabel {
    components: Vec<i64>,
}

impl OrdPathLabel {
    /// The document root (empty component sequence).
    pub fn root() -> Self {
        OrdPathLabel {
            components: Vec::new(),
        }
    }

    /// The raw components.
    pub fn components(&self) -> &[i64] {
        &self.components
    }

    /// Number of levels below the root = number of odd components.
    pub fn level(&self) -> u32 {
        self.components
            .iter()
            .filter(|c| (**c).rem_euclid(2) == 1)
            .count() as u32
    }

    /// The label of this node's parent: strip the trailing group (the
    /// final odd component plus the run of even carets before it).
    pub fn parent(&self) -> Option<OrdPathLabel> {
        if self.components.is_empty() {
            return None;
        }
        let mut end = self.components.len() - 1;
        debug_assert!(
            self.components[end].rem_euclid(2) == 1,
            "labels end with an odd component"
        );
        // strip carets before the final odd
        while end > 0 && self.components[end - 1].rem_euclid(2) == 0 {
            end -= 1;
        }
        Some(OrdPathLabel {
            components: self.components[..end].to_vec(),
        })
    }

    /// Is `self` a strict prefix of `other`? Group alignment is automatic:
    /// a complete label always ends in an odd component, which is also a
    /// group terminator inside any extension.
    pub fn is_strict_prefix_of(&self, other: &OrdPathLabel) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    fn extend_group(&self, group: &[i64]) -> OrdPathLabel {
        let mut components = self.components.clone();
        components.extend_from_slice(group);
        OrdPathLabel { components }
    }

    /// The trailing group (`even* odd`) — this node's positional
    /// identifier relative to its parent.
    fn own_group(&self) -> &[i64] {
        if self.components.is_empty() {
            return &[];
        }
        let mut start = self.components.len() - 1;
        while start > 0 && self.components[start - 1].rem_euclid(2) == 0 {
            start -= 1;
        }
        &self.components[start..]
    }
}

impl Label for OrdPathLabel {
    fn size_bits(&self) -> u64 {
        // Compressed binary model: each component gets a 3-bit length tag
        // plus the zig-zag magnitude bits (minimum 3).
        self.components
            .iter()
            .map(|&c| {
                let zz = ((c << 1) ^ (c >> 63)) as u64;
                let mag = 64 - zz.leading_zeros() as u64;
                3 + mag.max(3)
            })
            .sum()
    }

    fn display(&self) -> String {
        if self.components.is_empty() {
            return "∅".to_string();
        }
        self.components
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// The ORDPATH labelling scheme.
#[derive(Debug, Clone)]
pub struct OrdPath {
    stats: SchemeStats,
    /// Largest component magnitude the compressed binary encoding's
    /// prefix-free length-code table covers. The table published with
    /// ORDPATH is finite, so component values past it require relabelling
    /// every label in the document (the §4 overflow the paper notes
    /// ORDPATH "cannot completely avoid"). Default 2⁴³, the published
    /// table's reach.
    component_limit: i64,
}

impl Default for OrdPath {
    fn default() -> Self {
        OrdPath {
            stats: SchemeStats::default(),
            component_limit: 1 << 43,
        }
    }
}

impl OrdPath {
    /// A fresh ORDPATH scheme.
    pub fn new() -> Self {
        OrdPath::default()
    }

    /// A scheme whose encoding table covers only ±`limit` — the
    /// failure-injection knob that makes the asymptotic overflow
    /// reachable in test-size workloads.
    pub fn with_component_limit(limit: i64) -> Self {
        OrdPath {
            stats: SchemeStats::default(),
            component_limit: limit,
        }
    }

    fn renumber_siblings(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<OrdPathLabel>,
        parent: NodeId,
        inserted: NodeId,
    ) -> Result<InsertReport, TreeError> {
        self.stats.overflow_events += 1;
        let parent_label = labeling.req(parent)?.clone();
        let mut relabeled = Vec::new();
        let mut ordinal = 1i64;
        for sib in tree.children(parent).collect::<Vec<_>>() {
            let new_path = parent_label.extend_group(&[ordinal]);
            ordinal += 2;
            self.rebase(tree, labeling, sib, new_path, inserted, &mut relabeled);
        }
        Ok(InsertReport {
            relabeled,
            overflowed: true,
        })
    }

    fn rebase(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<OrdPathLabel>,
        node: NodeId,
        new_path: OrdPathLabel,
        skip: NodeId,
        relabeled: &mut Vec<NodeId>,
    ) {
        let old = labeling.get(node).cloned();
        if old.as_ref() != Some(&new_path) {
            if node != skip && old.is_some() {
                relabeled.push(node);
                self.stats.relabeled_nodes += 1;
            }
            labeling.set(node, new_path.clone());
        }
        for child in tree.children(node).collect::<Vec<_>>() {
            // unlabelled children belong to an in-flight graft batch
            let Some(own) = labeling.get(child).map(|l| l.own_group().to_vec()) else {
                continue;
            };
            self.rebase(
                tree,
                labeling,
                child,
                new_path.extend_group(&own),
                skip,
                relabeled,
            );
        }
    }

    /// A group for a node inserted after the last sibling whose group is
    /// `left`.
    fn group_after(left: &[i64]) -> Vec<i64> {
        let first = left[0];
        // odd first component → +2 keeps oddness; even (caret) → the next
        // odd above it.
        let next = if first.rem_euclid(2) == 1 {
            first + 2
        } else {
            first + 1
        };
        vec![next]
    }

    /// A group for a node inserted before the first sibling whose group is
    /// `right`.
    fn group_before(right: &[i64]) -> Vec<i64> {
        let first = right[0];
        let prev = if first.rem_euclid(2) == 1 {
            first - 2
        } else {
            first - 1
        };
        vec![prev]
    }

    /// A group strictly between two sibling groups (`l < r`
    /// component-lexicographically). Carets in when no odd integer sits
    /// between the first components.
    fn group_between(l: &[i64], r: &[i64], stats: &mut SchemeStats) -> Vec<i64> {
        let a = l[0];
        let b = r[0];
        if b - a >= 2 {
            // The careting midpoint computation of the original scheme.
            stats.divisions += 1;
            let mid = a + (b - a) / 2;
            let odd = if mid.rem_euclid(2) == 1 { mid } else { mid + 1 };
            if odd > a && odd < b {
                return vec![odd];
            }
            let even = if mid.rem_euclid(2) == 0 { mid } else { mid + 1 };
            if even > a && even < b {
                return vec![even, 1];
            }
        }
        if a == b {
            // identical first components: both groups continue (both
            // even here — equal odd firsts would terminate both groups
            // identically, i.e. equal labels).
            debug_assert!(a.rem_euclid(2) == 0);
            let mut g = vec![a];
            g.extend(Self::group_between(&l[1..], &r[1..], stats));
            return g;
        }
        // b == a + 1: one neighbour odd, one even.
        if a.rem_euclid(2) == 1 {
            // l = [a] (group ends at odd); r = [a+1, rest…]: slide under
            // the caret a+1, before r's remainder.
            let mut g = vec![a + 1];
            g.extend(Self::group_before(&r[1..]));
            g
        } else {
            // l = [a, rest…] (a even); r = [b] with b odd: extend l's
            // caret after its remainder.
            let mut g = vec![a];
            g.extend(Self::group_after(&l[1..]));
            g
        }
    }
}

impl LabelingScheme for OrdPath {
    type Label = OrdPathLabel;

    fn name(&self) -> &'static str {
        "Ordpath"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "Ordpath",
            citation: "[18]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Figure 7 row: Hybrid Variable F F F N N N N F
            declared: [
                Compliance::Full, // Persistent labels
                Compliance::Full, // XPath evaluations
                Compliance::Full, // Level encoding
                Compliance::None, // Overflow problem
                Compliance::None, // Orthogonal
                Compliance::None, // Compact encoding
                Compliance::None, // Division computation
                Compliance::Full, // Recursion (streaming odd counters)
            ],
            in_figure7: true,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<OrdPathLabel>, TreeError> {
        // Single streaming preorder pass with per-parent odd counters: no
        // recursion, no division (Figure 7's `F` in Recursion for
        // ORDPATH). By the time a node is reached in preorder its parent
        // is already labelled, so one flat loop assigning each node's
        // children their ordinals covers the tree in one pass.
        let mut labeling = Labeling::with_capacity_for(tree);
        labeling.set(tree.root(), OrdPathLabel::root());
        for node in tree.preorder() {
            let parent_label = labeling.req(node)?.clone();
            let mut ordinal: i64 = 1;
            for child in tree.children(node) {
                labeling.set(child, parent_label.extend_group(&[ordinal]));
                ordinal += 2;
            }
        }
        Ok(labeling)
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<OrdPathLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        let parent_label = labeling.req(parent)?.clone();
        // unlabelled neighbours belong to the same graft batch: absent
        let left = tree
            .prev_sibling(node)
            .and_then(|s| labeling.get(s).cloned());
        let right = tree
            .next_sibling(node)
            .and_then(|s| labeling.get(s).cloned());
        let group = match (&left, &right) {
            (None, None) => vec![1],
            (Some(l), None) => Self::group_after(l.own_group()),
            (None, Some(r)) => Self::group_before(r.own_group()),
            (Some(l), Some(r)) => {
                Self::group_between(l.own_group(), r.own_group(), &mut self.stats)
            }
        };
        if group
            .iter()
            .any(|c| c.unsigned_abs() > self.component_limit.unsigned_abs())
        {
            return self.renumber_siblings(tree, labeling, parent, node);
        }
        labeling.set(node, parent_label.extend_group(&group));
        Ok(InsertReport::clean())
    }

    fn cmp_doc(&self, a: &OrdPathLabel, b: &OrdPathLabel) -> Ordering {
        a.components.cmp(&b.components)
    }

    fn relation(&self, rel: Relation, a: &OrdPathLabel, b: &OrdPathLabel) -> Option<bool> {
        match rel {
            Relation::AncestorDescendant => Some(a.is_strict_prefix_of(b)),
            Relation::ParentChild => Some(b.parent().as_ref() == Some(a)),
            Relation::Sibling => {
                if a.components.is_empty() || b.components.is_empty() || a == b {
                    return Some(false);
                }
                Some(a.parent() == b.parent())
            }
        }
    }

    fn level(&self, a: &OrdPathLabel) -> Option<u32> {
        Some(a.level())
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn overflow_audit_instance(&self) -> Option<Self> {
        Some(OrdPath::with_component_limit(1 << 9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::figure3_shape;
    use xupd_xmldom::{NodeKind, XmlTree};

    #[test]
    fn initial_labels_are_positive_odds() {
        // Figure 4 initial tree: 1 / 1.1 1.3 1.5 / 1.1.1 1.1.3 1.3.1 …
        let (tree, nodes) = figure3_shape();
        let mut scheme = OrdPath::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let shown: Vec<String> = nodes
            .iter()
            .map(|&n| labeling.req(n).unwrap().display())
            .collect();
        assert_eq!(
            shown,
            ["1", "1.1", "1.1.1", "1.1.3", "1.3", "1.3.1", "1.5", "1.5.1", "1.5.3", "1.5.5"]
        );
    }

    #[test]
    fn figure4_insertions() {
        // Reproduce the grey nodes of Figure 4 on the subtree rooted at
        // 1.5 with children 1.5.1, 1.5.3 (the figure's third child has
        // two children before insertion: 1.5.1 and 1.5.3).
        let mut tree = XmlTree::new();
        let r = tree.root();
        let root = tree.create(NodeKind::element("root"));
        tree.append_child(r, root).unwrap();
        let c1 = tree.create(NodeKind::element("c1"));
        let c2 = tree.create(NodeKind::element("c2"));
        tree.append_child(root, c1).unwrap();
        tree.append_child(root, c2).unwrap();
        let mut scheme = OrdPath::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        assert_eq!(labeling.req(c1).unwrap().display(), "1.1");
        assert_eq!(labeling.req(c2).unwrap().display(), "1.3");

        // right of all children: 1.3 + 2 → 1.5… the paper's example adds
        // two to the right-most positional identifier (1.3.3 from 1.3.1).
        let after = tree.create(NodeKind::element("after"));
        tree.append_child(root, after).unwrap();
        scheme.on_insert(&tree, &mut labeling, after).unwrap();
        assert_eq!(labeling.req(after).unwrap().display(), "1.5");

        // left of all children: 1.1 − 2 → 1.-1 (paper: 1.1.-1)
        let before = tree.create(NodeKind::element("before"));
        tree.prepend_child(root, before).unwrap();
        scheme.on_insert(&tree, &mut labeling, before).unwrap();
        assert_eq!(labeling.req(before).unwrap().display(), "1.-1");

        // between 1.1 and 1.3: caret in → 1.2.1 (paper: 1.5.2.1)
        let mid = tree.create(NodeKind::element("mid"));
        tree.insert_after(c1, mid).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, mid).unwrap();
        assert!(rep.relabeled.is_empty());
        assert_eq!(labeling.req(mid).unwrap().display(), "1.2.1");
        assert!(scheme.stats().divisions > 0, "careting divides");

        // document order intact
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn careted_nodes_keep_level_and_relations() {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let root = tree.create(NodeKind::element("root"));
        tree.append_child(r, root).unwrap();
        let c1 = tree.create(NodeKind::element("c1"));
        let c2 = tree.create(NodeKind::element("c2"));
        tree.append_child(root, c1).unwrap();
        tree.append_child(root, c2).unwrap();
        let mut scheme = OrdPath::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let mid = tree.create(NodeKind::element("mid"));
        tree.insert_after(c1, mid).unwrap();
        scheme.on_insert(&tree, &mut labeling, mid).unwrap();
        // careted label 1.2.1 has THREE components but level 2
        let lm = labeling.req(mid).unwrap();
        assert_eq!(lm.components().len(), 3);
        assert_eq!(scheme.level(lm), Some(tree.depth(mid)));
        // parent/sibling relations still evaluable from labels alone
        let lroot = labeling.req(root).unwrap();
        let lc1 = labeling.req(c1).unwrap();
        assert_eq!(
            scheme.relation(Relation::ParentChild, lroot, lm),
            Some(true)
        );
        assert_eq!(scheme.relation(Relation::Sibling, lc1, lm), Some(true));
        assert_eq!(
            scheme.relation(Relation::AncestorDescendant, lc1, lm),
            Some(false)
        );
    }

    #[test]
    fn repeated_careting_stays_ordered_and_unique() {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let root = tree.create(NodeKind::element("root"));
        tree.append_child(r, root).unwrap();
        let a = tree.create(NodeKind::element("a"));
        let b = tree.create(NodeKind::element("b"));
        tree.append_child(root, a).unwrap();
        tree.append_child(root, b).unwrap();
        let mut scheme = OrdPath::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        // always insert directly after `a` — a skewed careting storm
        for _ in 0..100 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_after(a, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty(), "ORDPATH never relabels");
        }
        assert!(labeling.find_duplicate().is_none());
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less,
                "{} !< {}",
                labeling.req(w[0]).unwrap().display(),
                labeling.req(w[1]).unwrap().display()
            );
        }
    }

    #[test]
    fn parent_of_careted_label_strips_whole_group() {
        let l = OrdPathLabel {
            components: vec![1, 5, 2, 1],
        };
        assert_eq!(l.parent().unwrap().components(), &[1, 5]);
        assert_eq!(l.level(), 3);
        let root_child = OrdPathLabel {
            components: vec![1],
        };
        assert_eq!(root_child.parent().unwrap().components(), &[] as &[i64]);
        assert_eq!(OrdPathLabel::root().parent(), None);
    }

    #[test]
    fn component_limit_overflow_renumbers_and_recovers() {
        // The §4 overflow ORDPATH "cannot completely avoid": a tight
        // encoding-table budget makes it reachable in a small storm.
        let mut tree = XmlTree::new();
        let r = tree.root();
        let root = tree.create(NodeKind::element("root"));
        tree.append_child(r, root).unwrap();
        let first = tree.create(NodeKind::element("a"));
        tree.append_child(root, first).unwrap();
        let mut scheme = OrdPath::with_component_limit(16);
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let mut overflowed = false;
        let mut front = first;
        for _ in 0..40 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(front, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            front = x;
            if rep.overflowed {
                assert!(!rep.relabeled.is_empty(), "renumber touches siblings");
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "−2-per-prepend growth must hit the budget");
        assert!(scheme.stats().overflow_events > 0);
        // renumbering restored order and uniqueness
        assert!(labeling.find_duplicate().is_none());
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn audit_instance_has_tight_budget() {
        use xupd_labelcore::LabelingScheme as _;
        let scheme = OrdPath::new();
        let audit = scheme.overflow_audit_instance().expect("ORDPATH audits");
        assert_eq!(audit.component_limit, 1 << 9);
        assert_eq!(scheme.component_limit, 1 << 43, "production default");
    }

    #[test]
    fn negative_carets_sort_before_positive() {
        let before = OrdPathLabel {
            components: vec![1, -1],
        };
        let first = OrdPathLabel {
            components: vec![1, 1],
        };
        assert!(before < first);
    }
}
