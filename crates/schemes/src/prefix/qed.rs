//! QED (Li & Ling, CIKM 2005 — \[14\] in the paper).
//!
//! Quaternary positional codes over `{1,2,3}` with the 2-bit `00` pattern
//! reserved as storage separator: code sizes are never stored in a
//! fixed-width field, so QED *completely avoids* the §4 overflow problem
//! and never relabels — the `F`s in Figure 7's *Persistent*, *Overflow*
//! and *Orthogonal* columns. Its weaknesses are the recursive bulk
//! algorithm with third-position computations (the `N`s in *Division* and
//! *Recursion*) and rapid label growth under skewed insertion (the `N` in
//! *Compact Enc.*, measured by the P3 growth benchmark).

use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use xupd_labelcore::quaternary::{bulk_qed, qinsert, QCode};
use xupd_labelcore::{EncodingRep, OrderKind, SchemeDescriptor, SchemeStats};

/// The QED sibling algebra.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QedAlgebra;

impl SiblingAlgebra for QedAlgebra {
    type Code = QCode;

    fn name(&self) -> &'static str {
        "QED"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "QED",
            citation: "[14]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Figure 7 row: Hybrid Variable F F F F F N N N
            declared: SchemeDescriptor::declared_from_letters("FFFFFNNN"),
            in_figure7: true,
        }
    }

    fn bulk(&mut self, n: usize, stats: &mut SchemeStats) -> Vec<QCode> {
        bulk_qed(n, stats)
    }

    fn insert(
        &mut self,
        left: Option<&QCode>,
        right: Option<&QCode>,
        stats: &mut SchemeStats,
    ) -> CodeOutcome<QCode> {
        if left.is_some() && right.is_some() {
            // The original GetOneThirdAndTwoThirdCode computes weighted
            // third-points over code values; our rule-based construction
            // mirrors one value division per between-code.
            stats.divisions += 1;
        }
        CodeOutcome::Fresh(qinsert(left, right))
    }

    fn code_bits(code: &QCode) -> u64 {
        code.size_bits()
    }

    fn code_display(code: &QCode) -> String {
        code.to_string()
    }
}

/// The QED labelling scheme (prefix application).
pub type Qed = PrefixScheme<QedAlgebra>;

impl Qed {
    /// A fresh QED scheme.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(QedAlgebra)
    }
}

impl Default for Qed {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use xupd_labelcore::{Label, LabelingScheme, Relation};
    use xupd_xmldom::sample::{figure1_document, figure3_shape};
    use xupd_xmldom::{NodeKind, XmlTree};

    #[test]
    fn never_relabels_under_any_insertion_pattern() {
        let (mut tree, nodes) = figure3_shape();
        let mut scheme = Qed::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let originals: Vec<_> = nodes
            .iter()
            .map(|&n| (n, labeling.req(n).unwrap().clone()))
            .collect();
        // before-first, after-last, between, deep — 200 mixed insertions
        let mut target = nodes[1];
        for i in 0..200 {
            let x = tree.create(NodeKind::element("x"));
            match i % 4 {
                0 => tree.insert_before(target, x).unwrap(),
                1 => tree.insert_after(target, x).unwrap(),
                2 => tree.prepend_child(target, x).unwrap(),
                _ => tree.append_child(target, x).unwrap(),
            }
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty());
            assert!(!rep.overflowed);
            if i % 7 == 0 {
                target = x;
            }
        }
        for (n, old) in originals {
            assert_eq!(labeling.req(n).unwrap(), &old, "label of {n} must persist");
        }
        assert_eq!(scheme.stats().overflow_events, 0);
        assert_eq!(scheme.stats().relabeled_nodes, 0);
        assert!(labeling.find_duplicate().is_none());
    }

    #[test]
    fn order_and_relations_on_figure1() {
        let tree = figure1_document();
        let mut scheme = Qed::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for w in all.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
        for &x in &all {
            for &y in &all {
                if x == y {
                    continue;
                }
                assert_eq!(
                    scheme.relation(
                        Relation::AncestorDescendant,
                        labeling.req(x).unwrap(),
                        labeling.req(y).unwrap()
                    ),
                    Some(tree.is_ancestor(x, y))
                );
            }
        }
    }

    #[test]
    fn skewed_insertion_grows_roughly_linearly_in_code_length() {
        // §4: "in the case that nodes are repeatedly inserted at a fixed
        // position, the size of the QED-Prefix label increases rapidly".
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let first = tree.create(NodeKind::element("a"));
        tree.append_child(p, first).unwrap();
        let mut scheme = Qed::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let mut front = first;
        for _ in 0..100 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(front, x).unwrap();
            scheme.on_insert(&tree, &mut labeling, x).unwrap();
            front = x;
        }
        let bits = labeling.req(front).unwrap().size_bits();
        assert!(
            bits >= 100,
            "after 100 skewed inserts the front label is large, got {bits} bits"
        );
    }

    #[test]
    fn level_is_path_length() {
        let tree = figure1_document();
        let mut scheme = Qed::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        for id in tree.ids_in_doc_order() {
            assert_eq!(scheme.level(labeling.req(id).unwrap()), Some(tree.depth(id)));
        }
    }
}
