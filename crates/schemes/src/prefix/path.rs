//! Generic machinery shared by the one-component-per-level prefix schemes
//! (DeweyID, DLN, ImprovedBinary, QED, CDBS, CDQS).
//!
//! A [`PathLabel`] is the sequence of sibling codes along the root path;
//! document order is lexicographic (prefix-smaller) over that sequence,
//! ancestor-descendant is a strict prefix test, parent-child additionally
//! checks length, and level is the component count — exactly the hybrid
//! order / path-vector behaviour §3.1.2 describes.
//!
//! Each concrete scheme supplies a [`SiblingAlgebra`]: how to bulk-label a
//! sibling list and how to produce a code for an insertion, possibly
//! demanding renumbering (which is what separates the persistent schemes
//! from DeweyID/DLN in Figure 7's *Persistent Labels* column).

use std::cmp::Ordering;
use std::fmt::Debug;
use xupd_labelcore::{
    InsertReport, Label, Labeling, LabelingScheme, Relation, SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// Outcome of asking an algebra for an insertion code.
#[derive(Debug, Clone)]
pub enum CodeOutcome<C> {
    /// A code strictly between the neighbours — no existing label touched.
    Fresh(C),
    /// No such code exists; the inserted node and all *following* siblings
    /// must be renumbered (DeweyID's behaviour, §3.1.2).
    RenumberFollowing,
    /// The encoding is exhausted (§4 overflow); the whole sibling list
    /// must be renumbered.
    RenumberAll,
}

/// The per-sibling-list code algebra a prefix scheme plugs into
/// [`PrefixScheme`].
pub trait SiblingAlgebra {
    /// The sibling-code type (one component of a [`PathLabel`]).
    type Code: Clone + Eq + Ord + Debug;

    /// Scheme name (Figure 7 row).
    fn name(&self) -> &'static str;

    /// Static descriptor (classification + declared Figure 7 row).
    fn descriptor(&self) -> SchemeDescriptor;

    /// True when the algebra's code decisions depend only on the
    /// `(left, right)` neighbour codes passed in — no hidden temporal
    /// state — so footprint-disjoint edits commute label-for-label.
    /// Mirrors [`xupd_labelcore::LabelingScheme::order_independent`];
    /// conservative default: `false`.
    fn order_independent(&self) -> bool {
        false
    }

    /// True when inserting a sibling never rewrites neighbour codes
    /// (`insert` always returns `CodeOutcome::Clean`), so a created
    /// subtree that is later deleted leaves zero residue on surviving
    /// labels. Mirrors
    /// [`xupd_labelcore::LabelingScheme::cancellation_neutral`];
    /// conservative default: `false`.
    fn cancellation_neutral(&self) -> bool {
        false
    }

    /// Codes for `n` fresh siblings in document order.
    fn bulk(&mut self, n: usize, stats: &mut SchemeStats) -> Vec<Self::Code>;

    /// A code for one node inserted between `left` and `right` (either
    /// may be absent at the ends of the sibling list).
    fn insert(
        &mut self,
        left: Option<&Self::Code>,
        right: Option<&Self::Code>,
        stats: &mut SchemeStats,
    ) -> CodeOutcome<Self::Code>;

    /// Codes for `count` siblings that follow `after` (used by
    /// [`CodeOutcome::RenumberFollowing`]). The default delegates to
    /// repeated end-insertion.
    fn tail(
        &mut self,
        after: Option<&Self::Code>,
        count: usize,
        stats: &mut SchemeStats,
    ) -> Vec<Self::Code> {
        let mut out: Vec<Self::Code> = Vec::with_capacity(count);
        let mut prev = after.cloned();
        for _ in 0..count {
            match self.insert(prev.as_ref(), None, stats) {
                CodeOutcome::Fresh(c) => {
                    prev = Some(c.clone());
                    out.push(c);
                }
                _ => {
                    debug_assert!(false, "end-insertion always has room");
                    break;
                }
            }
        }
        out
    }

    /// Storage size of one code in bits.
    fn code_bits(code: &Self::Code) -> u64;

    /// Rendering of one code (for the paper-figure displays).
    fn code_display(code: &Self::Code) -> String;

    /// Level derived from a path of `len` components; default: the
    /// component count (document root = 0).
    fn level_of_path(path_len: usize) -> Option<u32> {
        Some(path_len as u32)
    }

    /// An algebra variant with its encoding budget tightened so §4
    /// overflow becomes reachable within a test-size workload; `None`
    /// when the standard budget is already reachable or no budget exists.
    fn overflow_audit_algebra(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Rendering of a whole path; default: dot-joined components (the
    /// Dewey/ORDPATH/ImprovedBinary figure style). LSDX overrides this to
    /// produce the paper's `2ab.b` style.
    fn path_display(path: &[Self::Code]) -> String {
        if path.is_empty() {
            return "∅".to_string();
        }
        path.iter()
            .map(|c| Self::code_display(c))
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// A prefix label: the sibling codes along the root path. The document
/// root carries the empty path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathLabel<C> {
    /// Sibling codes from the root down to this node.
    pub components: Vec<C>,
}

impl<C: Clone> PathLabel<C> {
    /// The document root's label.
    pub fn root() -> Self {
        PathLabel {
            components: Vec::new(),
        }
    }

    /// This path extended by one child code. Allocates the child path at
    /// its exact final length so the clone-then-push pattern never pays a
    /// second (doubling) allocation.
    pub fn child(&self, code: C) -> Self {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(code);
        PathLabel { components }
    }

    /// The last component (the node's own sibling code); `None` for the
    /// root.
    pub fn own_code(&self) -> Option<&C> {
        self.components.last()
    }

    /// Is `self` a strict prefix of `other` (the ancestor test)?
    pub fn is_strict_prefix_of(&self, other: &PathLabel<C>) -> bool
    where
        C: Eq,
    {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }
}

/// Wrapper implementing [`Label`] for a path over an algebra's code type.
/// (A newtype per algebra keeps `size_bits`/`display` resolvable without
/// threading the algebra through every label.)
pub struct AlgPath<A: SiblingAlgebra> {
    /// The underlying component path.
    pub path: PathLabel<A::Code>,
}

// Manual impls: the derives would demand bounds on `A` itself, but only
// `A::Code` (already `Clone + Eq + Ord + Debug` by the trait definition)
// participates.
impl<A: SiblingAlgebra> Clone for AlgPath<A> {
    fn clone(&self) -> Self {
        AlgPath {
            path: self.path.clone(),
        }
    }
}
impl<A: SiblingAlgebra> PartialEq for AlgPath<A> {
    fn eq(&self, other: &Self) -> bool {
        self.path == other.path
    }
}
impl<A: SiblingAlgebra> Eq for AlgPath<A> {}
impl<A: SiblingAlgebra> PartialOrd for AlgPath<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: SiblingAlgebra> Ord for AlgPath<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.path.components.cmp(&other.path.components)
    }
}
impl<A: SiblingAlgebra> Debug for AlgPath<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", Label::display(self))
    }
}

impl<A: SiblingAlgebra> Label for AlgPath<A> {
    fn size_bits(&self) -> u64 {
        self.path.components.iter().map(|c| A::code_bits(c)).sum()
    }

    fn display(&self) -> String {
        A::path_display(&self.path.components)
    }
}

/// A complete [`LabelingScheme`] assembled from a [`SiblingAlgebra`].
pub struct PrefixScheme<A: SiblingAlgebra> {
    algebra: A,
    stats: SchemeStats,
}

impl<A: SiblingAlgebra + Clone> Clone for PrefixScheme<A> {
    fn clone(&self) -> Self {
        PrefixScheme {
            algebra: self.algebra.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl<A: SiblingAlgebra> PrefixScheme<A> {
    /// Wrap an algebra.
    pub fn from_algebra(algebra: A) -> Self {
        PrefixScheme {
            algebra,
            stats: SchemeStats::default(),
        }
    }

    /// Access the algebra (tests poke at scheme-specific knobs).
    pub fn algebra_mut(&mut self) -> &mut A {
        &mut self.algebra
    }

    fn label_children(
        &mut self,
        tree: &XmlTree,
        parent: NodeId,
        parent_path: &PathLabel<A::Code>,
        labeling: &mut Labeling<AlgPath<A>>,
    ) {
        let n = tree.children(parent).count();
        if n == 0 {
            return;
        }
        let codes = self.algebra.bulk(n, &mut self.stats);
        debug_assert_eq!(codes.len(), n);
        for (child, code) in tree.children(parent).zip(codes) {
            let path = parent_path.child(code);
            labeling.set(child, AlgPath { path: path.clone() });
            self.label_children(tree, child, &path, labeling);
        }
    }

    /// Re-root the subtree at `node` onto `new_path`, preserving each
    /// descendant's own sibling code. Appends every node whose label
    /// actually changed (other than `skip`) to `changed`.
    fn rebase_subtree(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<AlgPath<A>>,
        node: NodeId,
        new_path: PathLabel<A::Code>,
        skip: NodeId,
        changed: &mut Vec<NodeId>,
    ) {
        let old = labeling.get(node).cloned();
        if old.as_ref().map(|l| &l.path) != Some(&new_path) {
            if node != skip && old.is_some() {
                changed.push(node);
                self.stats.relabeled_nodes += 1;
            }
            labeling.set(
                node,
                AlgPath {
                    path: new_path.clone(),
                },
            );
        }
        for child in tree.children(node) {
            // an unlabelled child is part of a graft batch still being
            // inserted — it will receive its label in its own turn
            let Some(own) = labeling.get(child).and_then(|l| l.path.own_code().cloned()) else {
                continue;
            };
            let child_path = new_path.child(own);
            self.rebase_subtree(tree, labeling, child, child_path, skip, changed);
        }
    }
}

impl<A: SiblingAlgebra> LabelingScheme for PrefixScheme<A> {
    type Label = AlgPath<A>;

    fn name(&self) -> &'static str {
        self.algebra.name()
    }

    fn descriptor(&self) -> SchemeDescriptor {
        self.algebra.descriptor()
    }

    fn order_independent(&self) -> bool {
        self.algebra.order_independent()
    }

    fn cancellation_neutral(&self) -> bool {
        self.algebra.cancellation_neutral()
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<AlgPath<A>>, TreeError> {
        let mut labeling = Labeling::with_capacity_for(tree);
        let root_path = PathLabel::root();
        labeling.set(
            tree.root(),
            AlgPath {
                path: root_path.clone(),
            },
        );
        self.label_children(tree, tree.root(), &root_path, &mut labeling);
        Ok(labeling)
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<AlgPath<A>>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        let parent_path = labeling.req(parent)?.path.clone();
        // An unlabelled neighbour is a node of the same graft batch that
        // has not been "inserted" yet (subtree insertion serialises nodes
        // one at a time, §3.1.2) — treat it as absent.
        let left_code = tree
            .prev_sibling(node)
            .and_then(|s| labeling.get(s))
            .and_then(|l| l.path.own_code().cloned());
        let right_code = tree
            .next_sibling(node)
            .and_then(|s| labeling.get(s))
            .and_then(|l| l.path.own_code().cloned());
        match self
            .algebra
            .insert(left_code.as_ref(), right_code.as_ref(), &mut self.stats)
        {
            CodeOutcome::Fresh(code) => {
                labeling.set(
                    node,
                    AlgPath {
                        path: parent_path.child(code),
                    },
                );
                Ok(InsertReport::clean())
            }
            CodeOutcome::RenumberFollowing => {
                // The inserted node and everything after it get fresh tail
                // codes following the left neighbour.
                let mut affected = vec![node];
                let mut cur = tree.next_sibling(node);
                while let Some(s) = cur {
                    affected.push(s);
                    cur = tree.next_sibling(s);
                }
                let codes = self
                    .algebra
                    .tail(left_code.as_ref(), affected.len(), &mut self.stats);
                let mut changed = Vec::new();
                for (sib, code) in affected.into_iter().zip(codes) {
                    let path = parent_path.child(code);
                    self.rebase_subtree(tree, labeling, sib, path, node, &mut changed);
                }
                Ok(InsertReport {
                    relabeled: changed,
                    overflowed: false,
                })
            }
            CodeOutcome::RenumberAll => {
                self.stats.overflow_events += 1;
                let n = tree.children(parent).count();
                let codes = self.algebra.bulk(n, &mut self.stats);
                let mut changed = Vec::new();
                for (sib, code) in tree.children(parent).zip(codes) {
                    let path = parent_path.child(code);
                    self.rebase_subtree(tree, labeling, sib, path, node, &mut changed);
                }
                Ok(InsertReport {
                    relabeled: changed,
                    overflowed: true,
                })
            }
        }
    }

    fn cmp_doc(&self, a: &AlgPath<A>, b: &AlgPath<A>) -> Ordering {
        a.path.components.cmp(&b.path.components)
    }

    fn relation(&self, rel: Relation, a: &AlgPath<A>, b: &AlgPath<A>) -> Option<bool> {
        let (pa, pb) = (&a.path, &b.path);
        match rel {
            Relation::AncestorDescendant => Some(pa.is_strict_prefix_of(pb)),
            Relation::ParentChild => {
                Some(pa.is_strict_prefix_of(pb) && pb.components.len() == pa.components.len() + 1)
            }
            Relation::Sibling => {
                if pa.components.is_empty() || pb.components.is_empty() {
                    return Some(false);
                }
                let la = pa.components.len();
                let lb = pb.components.len();
                Some(
                    la == lb
                        && pa.components[..la - 1] == pb.components[..lb - 1]
                        && pa.components[la - 1] != pb.components[lb - 1],
                )
            }
        }
    }

    fn level(&self, a: &AlgPath<A>) -> Option<u32> {
        A::level_of_path(a.path.components.len())
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn overflow_audit_instance(&self) -> Option<Self> {
        self.algebra
            .overflow_audit_algebra()
            .map(PrefixScheme::from_algebra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::dewey::DeweyId;
    use xupd_xmldom::sample::figure1_document;

    #[test]
    fn path_label_prefix_and_child() {
        let root: PathLabel<u32> = PathLabel::root();
        let a = root.child(1);
        let b = a.child(2);
        assert!(root.is_strict_prefix_of(&a));
        assert!(a.is_strict_prefix_of(&b));
        assert!(!b.is_strict_prefix_of(&a));
        assert!(!a.is_strict_prefix_of(&a));
        assert_eq!(b.own_code(), Some(&2));
        assert_eq!(root.own_code(), None);
    }

    #[test]
    fn generic_scheme_labels_fig1_in_doc_order() {
        let tree = figure1_document();
        let mut scheme = DeweyId::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        assert_eq!(labeling.len(), tree.len());
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
        assert!(labeling.find_duplicate().is_none());
    }

    #[test]
    fn generic_relations_match_tree_ground_truth() {
        let tree = figure1_document();
        let mut scheme = DeweyId::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for &x in &all {
            for &y in &all {
                if x == y {
                    continue;
                }
                let (lx, ly) = (labeling.req(x).unwrap(), labeling.req(y).unwrap());
                assert_eq!(
                    scheme.relation(Relation::AncestorDescendant, lx, ly),
                    Some(tree.is_ancestor(x, y))
                );
                assert_eq!(
                    scheme.relation(Relation::ParentChild, lx, ly),
                    Some(tree.parent(y) == Some(x))
                );
                let siblings = tree.parent(x).is_some() && tree.parent(x) == tree.parent(y);
                assert_eq!(scheme.relation(Relation::Sibling, lx, ly), Some(siblings));
            }
        }
    }

    #[test]
    fn generic_level_matches_depth() {
        let tree = figure1_document();
        let mut scheme = DeweyId::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        for id in tree.ids_in_doc_order() {
            assert_eq!(scheme.level(labeling.req(id).unwrap()), Some(tree.depth(id)));
        }
    }
}
