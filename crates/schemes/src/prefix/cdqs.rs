//! CDQS — Compact Dynamic Quaternary String (Li, Ling & Hu, VLDB Journal
//! 2008 — \[16\] in the paper).
//!
//! The same quaternary algebra as QED (hence the same `F`s in
//! *Persistent*, *Overflow*, *Orthogonal*) with a compact bulk assignment
//! that chooses minimal-total-size code sets — the extra `F` in *Compact
//! Enc.* that makes CDQS the §5.2 winner ("satisfies the greater number of
//! properties").

use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use xupd_labelcore::quaternary::{bulk_cdqs, qinsert, QCode};
use xupd_labelcore::{EncodingRep, OrderKind, SchemeDescriptor, SchemeStats};

/// The CDQS sibling algebra.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CdqsAlgebra;

impl SiblingAlgebra for CdqsAlgebra {
    type Code = QCode;

    fn name(&self) -> &'static str {
        "CDQS"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "CDQS",
            citation: "[16]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Figure 7 row: Hybrid Variable F F F F F F N N
            declared: SchemeDescriptor::declared_from_letters("FFFFFFNN"),
            in_figure7: true,
        }
    }

    fn bulk(&mut self, n: usize, stats: &mut SchemeStats) -> Vec<QCode> {
        bulk_cdqs(n, stats)
    }

    fn insert(
        &mut self,
        left: Option<&QCode>,
        right: Option<&QCode>,
        stats: &mut SchemeStats,
    ) -> CodeOutcome<QCode> {
        if left.is_some() && right.is_some() {
            stats.divisions += 1;
        }
        CodeOutcome::Fresh(qinsert(left, right))
    }

    fn code_bits(code: &QCode) -> u64 {
        code.size_bits()
    }

    fn code_display(code: &QCode) -> String {
        code.to_string()
    }
}

/// The CDQS labelling scheme.
pub type Cdqs = PrefixScheme<CdqsAlgebra>;

impl Cdqs {
    /// A fresh CDQS scheme.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(CdqsAlgebra)
    }
}

impl Default for Cdqs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::qed::Qed;
    use xupd_labelcore::LabelingScheme;
    use xupd_xmldom::{NodeKind, TreeBuilder, XmlTree};

    fn wide_tree(fanout: usize) -> XmlTree {
        let mut b = TreeBuilder::new().open("root");
        for i in 0..fanout {
            b = b.leaf(format!("c{i}"), "");
        }
        b.close().finish()
    }

    #[test]
    fn bulk_is_more_compact_than_qed_on_wide_trees() {
        let tree = wide_tree(500);
        let mut cdqs = Cdqs::new();
        let mut qed = Qed::new();
        let lc = cdqs.label_tree(&tree).unwrap();
        let lq = qed.label_tree(&tree).unwrap();
        assert!(
            lc.total_bits() < lq.total_bits(),
            "cdqs {} bits vs qed {} bits",
            lc.total_bits(),
            lq.total_bits()
        );
    }

    #[test]
    fn never_relabels() {
        let mut tree = wide_tree(20);
        let mut scheme = Cdqs::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let root_elem = tree.document_element().unwrap();
        let kids: Vec<_> = tree.children(root_elem).collect();
        for (i, &k) in kids.iter().enumerate() {
            let x = tree.create(NodeKind::element("x"));
            if i % 2 == 0 {
                tree.insert_before(k, x).unwrap();
            } else {
                tree.insert_after(k, x).unwrap();
            }
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty());
        }
        assert_eq!(scheme.stats().relabeled_nodes, 0);
        assert_eq!(scheme.stats().overflow_events, 0);
        assert!(labeling.find_duplicate().is_none());
    }

    #[test]
    fn order_preserved_after_mixed_updates() {
        let mut tree = wide_tree(30);
        let mut scheme = Cdqs::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let root_elem = tree.document_element().unwrap();
        let kids: Vec<_> = tree.children(root_elem).collect();
        // delete a third, insert into gaps
        for k in kids.iter().step_by(3) {
            scheme.on_delete(&tree, &mut labeling, *k);
            tree.remove_subtree(*k).unwrap();
        }
        let survivors: Vec<_> = tree.children(root_elem).collect();
        for s in survivors.iter().step_by(2) {
            let x = tree.create(NodeKind::element("y"));
            tree.insert_after(*s, x).unwrap();
            scheme.on_insert(&tree, &mut labeling, x).unwrap();
        }
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                std::cmp::Ordering::Less
            );
        }
    }
}
