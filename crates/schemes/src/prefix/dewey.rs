//! DeweyID (Tatarinov et al., SIGMOD 2002 — \[22\] in the paper).
//!
//! The naive prefix scheme: the *n*-th child carries the integer *n*.
//! Insertion anywhere but the end renumbers every following sibling (and
//! hence relabels their entire subtrees), which is the cost §3.1.2 calls
//! "significant" and the reason DeweyID's *Persistent Labels* column is
//! `N` in Figure 7. Figure 3 of the paper is reproduced in
//! `tests/figures.rs`.

use super::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use xupd_labelcore::{EncodingRep, OrderKind, SchemeDescriptor, SchemeStats};

/// The DeweyID sibling algebra: codes are 1-based ordinals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeweyAlgebra;

impl SiblingAlgebra for DeweyAlgebra {
    type Code = u64;

    fn name(&self) -> &'static str {
        "DeweyID"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "DeweyID",
            citation: "[22]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Figure 7 row: Hybrid Variable N F F N N N F F
            declared: SchemeDescriptor::declared_from_letters("NFFNNNFF"),
            in_figure7: true,
        }
    }

    fn bulk(&mut self, n: usize, _stats: &mut SchemeStats) -> Vec<u64> {
        // Single streaming pass, no division: DeweyID's two `F`s in the
        // Division/Recursion columns.
        (1..=n as u64).collect()
    }

    fn insert(
        &mut self,
        left: Option<&u64>,
        right: Option<&u64>,
        _stats: &mut SchemeStats,
    ) -> CodeOutcome<u64> {
        match (left, right) {
            // Appending after the last sibling is free.
            (l, None) => CodeOutcome::Fresh(l.copied().unwrap_or(0) + 1),
            // Gaps can exist after deletions; reuse them when available.
            (Some(&l), Some(&r)) if r > l + 1 => CodeOutcome::Fresh(l + 1),
            (None, Some(&r)) if r > 1 => CodeOutcome::Fresh(r - 1),
            // Otherwise every following sibling shifts by one.
            _ => CodeOutcome::RenumberFollowing,
        }
    }

    fn tail(&mut self, after: Option<&u64>, count: usize, _stats: &mut SchemeStats) -> Vec<u64> {
        let start = after.copied().unwrap_or(0) + 1;
        (start..start + count as u64).collect()
    }

    fn code_bits(code: &u64) -> u64 {
        // UTF-8-style varint storage of each ordinal.
        8 * u64::from(xupd_labelcore::varint::encoded_len(*code))
    }

    fn code_display(code: &u64) -> String {
        code.to_string()
    }
}

/// The DeweyID labelling scheme.
pub type DeweyId = PrefixScheme<DeweyAlgebra>;

impl DeweyId {
    /// A fresh DeweyID scheme.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(DeweyAlgebra)
    }
}

impl Default for DeweyId {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_labelcore::{Label, LabelingScheme};
    use xupd_xmldom::sample::figure3_shape;
    use xupd_xmldom::{NodeKind, XmlTree};

    #[test]
    fn figure3_dewey_labels() {
        // Figure 3: 1 / 1.1 1.2 1.3 / 1.1.1 1.1.2 1.2.1 1.3.1 1.3.2 1.3.3
        let (tree, nodes) = figure3_shape();
        let mut scheme = DeweyId::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let rendered: Vec<String> = nodes
            .iter()
            .map(|&n| labeling.req(n).unwrap().display())
            .collect();
        assert_eq!(
            rendered,
            ["1", "1.1", "1.1.1", "1.1.2", "1.2", "1.2.1", "1.3", "1.3.1", "1.3.2", "1.3.3"]
        );
    }

    #[test]
    fn append_is_persistent_but_middle_insert_renumbers() {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let a = tree.create(NodeKind::element("a"));
        let b = tree.create(NodeKind::element("b"));
        tree.append_child(p, a).unwrap();
        tree.append_child(p, b).unwrap();
        let mut scheme = DeweyId::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();

        // append: no relabels
        let c = tree.create(NodeKind::element("c"));
        tree.append_child(p, c).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, c).unwrap();
        assert!(rep.relabeled.is_empty());
        assert_eq!(labeling.req(c).unwrap().display(), "1.3");

        // middle insert: b and c shift
        let x = tree.create(NodeKind::element("x"));
        tree.insert_before(b, x).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
        assert_eq!(rep.relabeled.len(), 2, "b and c renumbered");
        assert_eq!(labeling.req(x).unwrap().display(), "1.2");
        assert_eq!(labeling.req(b).unwrap().display(), "1.3");
        assert_eq!(labeling.req(c).unwrap().display(), "1.4");
        assert_eq!(scheme.stats().relabeled_nodes, 2);
    }

    #[test]
    fn middle_insert_relabels_descendants_of_following_siblings() {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let a = tree.create(NodeKind::element("a"));
        let b = tree.create(NodeKind::element("b"));
        let b1 = tree.create(NodeKind::element("b1"));
        tree.append_child(p, a).unwrap();
        tree.append_child(p, b).unwrap();
        tree.append_child(b, b1).unwrap();
        let mut scheme = DeweyId::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        assert_eq!(labeling.req(b1).unwrap().display(), "1.2.1");

        let x = tree.create(NodeKind::element("x"));
        tree.insert_before(b, x).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
        assert_eq!(rep.relabeled.len(), 2, "b and its child b1");
        assert_eq!(labeling.req(b1).unwrap().display(), "1.3.1");
    }

    #[test]
    fn deletion_gaps_are_reused_without_renumbering() {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let kids: Vec<_> = (0..3)
            .map(|i| {
                let k = tree.create(NodeKind::element(format!("k{i}")));
                tree.append_child(p, k).unwrap();
                k
            })
            .collect();
        let mut scheme = DeweyId::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        // delete the middle child (code 2)
        scheme.on_delete(&tree, &mut labeling, kids[1]);
        tree.remove_subtree(kids[1]).unwrap();
        // insert between 1 and 3: the gap code 2 is reused
        let x = tree.create(NodeKind::element("x"));
        tree.insert_after(kids[0], x).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
        assert!(rep.relabeled.is_empty());
        assert_eq!(labeling.req(x).unwrap().display(), "1.2");
    }
}
