//! Containment (interval / region) labelling schemes (§3.1.1 of the
//! paper): labels record begin/end traversal positions; `u` is an
//! ancestor of `v` iff `u`'s interval contains `v`'s (Dietz's pre/post
//! observation, \[6\]).

pub mod accel;
pub mod qrs;
pub mod sector;
pub mod xrel;
