//! Sector labelling (Thonangi, COMAD 2006 — \[23\] in the paper).
//!
//! "A hybrid ordering approach … whereby sectors are used instead of
//! intervals and mathematical formulae are presented to determine
//! ancestor-descendant and document-order relationships" (§3.1.1). Each
//! node owns an angular sector nested inside its parent's sector; a
//! child's sector is carved out of the parent's by successive halving
//! (bit shifts — no division on label values), and an insertion claims
//! half of the free arc between its neighbours. When an arc can no longer
//! be halved (width < 4) the subtree's sectors are reallocated — the
//! partial compactness and overflow susceptibility of the Figure 7 row.

use std::cmp::Ordering;
use xupd_labelcore::{
    EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A sector label: the half-open arc `[lo, hi)` owned by the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SectorLabel {
    /// Arc start.
    pub lo: u64,
    /// Arc end (exclusive).
    pub hi: u64,
}

impl Label for SectorLabel {
    fn size_bits(&self) -> u64 {
        128
    }

    fn display(&self) -> String {
        format!("⟨{},{}⟩", self.lo, self.hi)
    }
}

/// Full circle: the root's arc.
const FULL: u64 = 1 << 62;

/// The Sector labelling scheme.
#[derive(Debug, Clone, Default)]
pub struct Sector {
    stats: SchemeStats,
}

impl Sector {
    /// A fresh Sector scheme.
    pub fn new() -> Self {
        Sector::default()
    }

    /// Recursively allocate sectors for the children of `node` inside
    /// `(lo, hi)`. Children split the parent arc into equal power-of-two
    /// shares (shift arithmetic only), each keeping interior slack for
    /// later insertions.
    fn allocate(
        &mut self,
        tree: &XmlTree,
        node: NodeId,
        lo: u64,
        hi: u64,
        labeling: &mut Labeling<SectorLabel>,
    ) {
        self.stats.recursive_calls += 1;
        labeling.set(node, SectorLabel { lo, hi });
        let n = tree.child_count(node) as u64;
        if n == 0 {
            return;
        }
        // share = floor((hi-lo-2) / 2^k) via shifts, 2^k >= n
        let usable = (hi - lo).saturating_sub(2);
        let mut k = 0u32;
        while (1u64 << k) < n {
            k += 1;
        }
        let share = usable >> k;
        let mut cursor = lo + 1;
        for child in tree.children(node).collect::<Vec<_>>() {
            let child_hi = (cursor + share.max(4)).min(hi - 1);
            self.allocate(tree, child, cursor, child_hi, labeling);
            cursor = child_hi;
        }
    }

    fn reallocate_children(
        &mut self,
        tree: &XmlTree,
        parent: NodeId,
        labeling: &mut Labeling<SectorLabel>,
        inserted: NodeId,
    ) -> Result<InsertReport, TreeError> {
        self.stats.overflow_events += 1;
        let parent_label = *labeling.req(parent)?;
        let before: Vec<(NodeId, Option<SectorLabel>)> = tree
            .preorder_from(parent)
            .map(|id| (id, labeling.get(id).copied()))
            .collect();
        self.allocate(tree, parent, parent_label.lo, parent_label.hi, labeling);
        let mut relabeled = Vec::new();
        for (id, old) in before {
            if id == inserted || id == parent {
                continue;
            }
            if old.as_ref() != labeling.get(id) {
                relabeled.push(id);
                self.stats.relabeled_nodes += 1;
            }
        }
        Ok(InsertReport {
            relabeled,
            overflowed: true,
        })
    }
}

impl LabelingScheme for Sector {
    type Label = SectorLabel;

    fn name(&self) -> &'static str {
        "Sector"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "Sector",
            citation: "[23]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Fixed,
            // Figure 7 row: Hybrid Fixed N P N N N P F N
            declared: SchemeDescriptor::declared_from_letters("NPNNNPFN"),
            in_figure7: true,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<SectorLabel>, TreeError> {
        let mut labeling = Labeling::with_capacity_for(tree);
        self.allocate(tree, tree.root(), 0, FULL, &mut labeling);
        Ok(labeling)
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<SectorLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        let plabel = *labeling.req(parent)?;
        // unlabelled neighbours belong to the same graft batch: absent
        let lo = match tree.prev_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => l.hi,
            None => plabel.lo + 1,
        };
        let hi = match tree.next_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => l.lo,
            None => plabel.hi - 1,
        };
        if hi > lo && hi - lo >= 4 {
            // Claim the middle half of the free arc (shift arithmetic
            // only), leaving slack on both sides for later insertions.
            let q = (hi - lo) >> 2;
            labeling.set(
                node,
                SectorLabel {
                    lo: lo + q,
                    hi: hi - q,
                },
            );
            Ok(InsertReport::clean())
        } else {
            self.reallocate_children(tree, parent, labeling, node)
        }
    }

    fn cmp_doc(&self, a: &SectorLabel, b: &SectorLabel) -> Ordering {
        a.lo.cmp(&b.lo).then(b.hi.cmp(&a.hi))
    }

    fn relation(&self, rel: Relation, a: &SectorLabel, b: &SectorLabel) -> Option<bool> {
        match rel {
            Relation::AncestorDescendant => Some(a.lo <= b.lo && b.hi <= a.hi && *a != *b),
            // No level information: parent-child undecidable (Level Enc. =
            // N in Figure 7, hence XPath Eval. = P).
            Relation::ParentChild => None,
            Relation::Sibling => None,
        }
    }

    fn level(&self, _a: &SectorLabel) -> Option<u32> {
        None
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::figure1_document;
    use xupd_xmldom::NodeKind;

    #[test]
    fn sectors_nest_and_order() {
        let tree = figure1_document();
        let mut scheme = Sector::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for w in all.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less,
                "{} vs {}",
                labeling.req(w[0]).unwrap().display(),
                labeling.req(w[1]).unwrap().display()
            );
        }
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                assert_eq!(
                    scheme.relation(
                        Relation::AncestorDescendant,
                        labeling.req(u).unwrap(),
                        labeling.req(v).unwrap()
                    ),
                    Some(tree.is_ancestor(u, v))
                );
            }
        }
    }

    #[test]
    fn insertion_claims_free_arc_without_relabelling() {
        let mut tree = figure1_document();
        let mut scheme = Sector::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let x = tree.create(NodeKind::element("x"));
        tree.append_child(book, x).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
        assert!(rep.relabeled.is_empty());
        assert!(!rep.overflowed);
    }

    #[test]
    fn exhausted_arc_reallocates_subtree() {
        let mut tree = figure1_document();
        let mut scheme = Sector::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        // Skewed prepend storm: the free arc before the first child
        // shrinks below the minimum and forces a reallocation.
        let mut overflowed = false;
        for _ in 0..200 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(first, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            if rep.overflowed {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "finite arcs must exhaust under skew");
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn level_and_parenthood_unsupported() {
        let tree = figure1_document();
        let mut scheme = Sector::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        assert_eq!(scheme.level(labeling.req(book).unwrap()), None);
        assert_eq!(
            scheme.relation(
                Relation::ParentChild,
                labeling.req(book).unwrap(),
                labeling.req(first).unwrap()
            ),
            None
        );
    }
}
