//! QRS (Amagasa, Yoshikawa & Uemura, ICDE 2003 — \[2\] in the paper).
//!
//! "The use of real (floating point) numbers for label identifiers
//! instead of integers to facilitate an arbitrary number of insertions
//! between two labels. However, computers represent floating point
//! numbers with a fixed number of bits and thus in practice the solution
//! is similar to an integer representation with sparse allocation and
//! consequently suffers from the same limitations" (§3.1.1).
//!
//! Labels are `(begin, end)` pairs of `f64`; insertion takes the midpoint
//! of the free range, computed as `(a + b) * 0.5` — a multiplication, so
//! the scheme keeps its Figure 7 `F` in *Division Comp.* — and the f64
//! mantissa exhausts after ~50 halvings at one spot, at which point the
//! document is renumbered: the paper's point, reproduced measurably.

use std::cmp::Ordering;
use xupd_labelcore::{
    EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A floating-point interval label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloatLabel {
    /// Interval begin.
    pub begin: f64,
    /// Interval end.
    pub end: f64,
}

impl Eq for FloatLabel {}

impl PartialOrd for FloatLabel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FloatLabel {
    fn cmp(&self, other: &Self) -> Ordering {
        // Labels are finite by construction; total_cmp agrees with the
        // partial order on finite values and keeps `cmp` total.
        self.begin
            .total_cmp(&other.begin)
            .then(other.end.total_cmp(&self.end))
    }
}

impl Label for FloatLabel {
    fn size_bits(&self) -> u64 {
        128
    }

    fn display(&self) -> String {
        format!("({},{})", self.begin, self.end)
    }
}

/// The QRS labelling scheme.
#[derive(Debug, Clone, Default)]
pub struct Qrs {
    stats: SchemeStats,
}

impl Qrs {
    /// A fresh QRS scheme.
    pub fn new() -> Self {
        Qrs::default()
    }

    fn compute(tree: &XmlTree) -> Labeling<FloatLabel> {
        // Integer-valued floats from a single depth-first pass, with unit
        // spacing (the fractional space between integers is the insertion
        // head-room).
        let mut labeling = Labeling::with_capacity_for(tree);
        let mut cursor = 0.0f64;
        Self::walk(tree, tree.root(), &mut cursor, &mut labeling);
        labeling
    }

    fn walk(tree: &XmlTree, node: NodeId, cursor: &mut f64, labeling: &mut Labeling<FloatLabel>) {
        let begin = *cursor;
        *cursor += 1.0;
        for child in tree.children(node) {
            Self::walk(tree, child, cursor, labeling);
        }
        *cursor += 1.0;
        labeling.set(
            node,
            FloatLabel {
                begin,
                end: *cursor,
            },
        );
    }
}

impl LabelingScheme for Qrs {
    type Label = FloatLabel;

    fn name(&self) -> &'static str {
        "QRS"
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "QRS",
            citation: "[2]",
            order: OrderKind::Global,
            encoding: EncodingRep::Fixed,
            // Figure 7 row: Global Fixed N P N N N P F F
            declared: SchemeDescriptor::declared_from_letters("NPNNNPFF"),
            in_figure7: true,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<FloatLabel>, TreeError> {
        Ok(Self::compute(tree))
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<FloatLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        // unlabelled neighbours belong to the same graft batch: absent
        let lo = match tree.prev_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => l.end,
            None => labeling.req(parent)?.begin,
        };
        let hi = match tree.next_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => l.begin,
            None => labeling.req(parent)?.end,
        };
        // Split the free range into thirds by multiplication, giving the
        // new node the middle third.
        let third = (hi - lo) * (1.0 / 3.0);
        let begin = lo + third;
        let end = hi - third;
        // f64 precision exhausted: the midpoint collides with a bound.
        if !(begin > lo && end < hi && begin < end) {
            self.stats.overflow_events += 1;
            let fresh = Self::compute(tree);
            let mut relabeled = Vec::new();
            for (id, new_label) in fresh.iter() {
                let changed = labeling.get(id).is_some_and(|old| old != new_label);
                if changed && id != node {
                    relabeled.push(id);
                    self.stats.relabeled_nodes += 1;
                }
                labeling.set(id, *new_label);
            }
            return Ok(InsertReport {
                relabeled,
                overflowed: true,
            });
        }
        labeling.set(node, FloatLabel { begin, end });
        Ok(InsertReport::clean())
    }

    fn cmp_doc(&self, a: &FloatLabel, b: &FloatLabel) -> Ordering {
        a.cmp(b)
    }

    fn relation(&self, rel: Relation, a: &FloatLabel, b: &FloatLabel) -> Option<bool> {
        match rel {
            Relation::AncestorDescendant => Some(a.begin < b.begin && b.end < a.end),
            // No level in the label: parent-child undecidable.
            Relation::ParentChild => None,
            Relation::Sibling => None,
        }
    }

    fn level(&self, _a: &FloatLabel) -> Option<u32> {
        None
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::figure1_document;
    use xupd_xmldom::NodeKind;

    #[test]
    fn intervals_nest_and_order() {
        let tree = figure1_document();
        let mut scheme = Qrs::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for w in all.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                assert_eq!(
                    scheme.relation(
                        Relation::AncestorDescendant,
                        labeling.req(u).unwrap(),
                        labeling.req(v).unwrap()
                    ),
                    Some(tree.is_ancestor(u, v))
                );
            }
        }
    }

    #[test]
    fn a_few_insertions_fit_in_fractional_space() {
        let mut tree = figure1_document();
        let mut scheme = Qrs::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        for _ in 0..10 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(first, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(!rep.overflowed, "ten thirds fit comfortably in f64");
        }
        assert_eq!(scheme.stats().overflow_events, 0);
    }

    #[test]
    fn float_precision_exhausts_under_skewed_insertion() {
        // Each skewed insert shrinks the free range to a third: the f64
        // mantissa (52 bits) exhausts after ~110 such insertions — "in
        // practice the solution is similar to an integer representation
        // with sparse allocation" (§3.1.1).
        let mut tree = figure1_document();
        let mut scheme = Qrs::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        let mut overflowed_at = None;
        for i in 0..500 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(first, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            if rep.overflowed {
                overflowed_at = Some(i);
                break;
            }
        }
        let at = overflowed_at.expect("f64 precision must exhaust");
        assert!(at > 20 && at < 200, "exhaustion after ~dozens, got {at}");
        // renumbering restored order
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }
}
