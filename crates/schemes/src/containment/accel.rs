//! XPath Accelerator (Grust, SIGMOD 2002 — \[9\] in the paper).
//!
//! Pure pre/post/level labels with **no gaps**: the canonical static
//! containment scheme. Evaluating a major-axis location step is a
//! rectangular region query in the pre/post plane; ancestor-descendant
//! and (with level) parent-child are decidable from labels, but sibling
//! identity is not — the `P` in Figure 7's *XPath Eval.* column.
//!
//! Every insertion shifts the preorder rank of all following nodes and
//! the postorder rank of all ancestors and following nodes: the scheme
//! relabels Θ(n) nodes per update, which is exactly why §3.1.1 rules
//! global-order schemes unsuitable for dynamic documents.

use std::cmp::Ordering;
use xupd_labelcore::{
    EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A pre/post/level label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrePostLabel {
    /// Preorder rank (document order).
    pub pre: u64,
    /// Postorder rank.
    pub post: u64,
    /// Nesting depth (document root = 0).
    pub level: u32,
}

impl Label for PrePostLabel {
    fn size_bits(&self) -> u64 {
        64 + 64 + 32
    }

    fn display(&self) -> String {
        format!("{},{}", self.pre, self.post)
    }
}

/// The XPath Accelerator labelling scheme.
#[derive(Debug, Clone, Default)]
pub struct XPathAccelerator {
    stats: SchemeStats,
}

impl XPathAccelerator {
    /// A fresh scheme.
    pub fn new() -> Self {
        XPathAccelerator::default()
    }

    fn compute(tree: &XmlTree) -> Labeling<PrePostLabel> {
        let mut labeling = Labeling::with_capacity_for(tree);
        let mut posts = vec![0u64; tree.id_bound()];
        for (i, id) in tree.postorder().enumerate() {
            posts[id.index()] = i as u64;
        }
        for (i, id) in tree.preorder().enumerate() {
            labeling.set(
                id,
                PrePostLabel {
                    pre: i as u64,
                    post: posts[id.index()],
                    level: tree.depth(id),
                },
            );
        }
        labeling
    }
}

impl LabelingScheme for XPathAccelerator {
    type Label = PrePostLabel;

    fn name(&self) -> &'static str {
        "XPath Accelerator"
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "XPath Accelerator",
            citation: "[9]",
            order: OrderKind::Global,
            encoding: EncodingRep::Fixed,
            // Figure 7 row: Global Fixed N P F N N F F F
            declared: SchemeDescriptor::declared_from_letters("NPFNNFFF"),
            in_figure7: true,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<PrePostLabel>, TreeError> {
        // Two streaming traversals; no recursion, no division.
        Ok(Self::compute(tree))
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<PrePostLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        // Gap-free global ranks: recompute, report every changed label.
        let fresh = Self::compute(tree);
        let mut relabeled = Vec::new();
        for (id, new_label) in fresh.iter() {
            let changed = labeling.get(id).is_some_and(|old| old != new_label);
            if changed && id != node {
                relabeled.push(id);
                self.stats.relabeled_nodes += 1;
            }
            labeling.set(id, *new_label);
        }
        Ok(InsertReport {
            relabeled,
            overflowed: false,
        })
    }

    fn on_delete(&mut self, tree: &XmlTree, labeling: &mut Labeling<PrePostLabel>, node: NodeId) {
        for d in tree.preorder_from(node) {
            labeling.remove(d);
        }
        // Deletions also shift global ranks; the scheme relabels
        // the survivors on the next read. We fold it in eagerly.
        // (Relabels from deletions are counted like insertions.)
    }

    fn cmp_doc(&self, a: &PrePostLabel, b: &PrePostLabel) -> Ordering {
        a.pre.cmp(&b.pre)
    }

    fn relation(&self, rel: Relation, a: &PrePostLabel, b: &PrePostLabel) -> Option<bool> {
        match rel {
            Relation::AncestorDescendant => Some(a.pre < b.pre && b.post < a.post),
            Relation::ParentChild => {
                Some(a.pre < b.pre && b.post < a.post && b.level == a.level + 1)
            }
            // Sibling identity is not decidable from pre/post/level pairs.
            Relation::Sibling => None,
        }
    }

    fn level(&self, a: &PrePostLabel) -> Option<u32> {
        Some(a.level)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::{figure1_document, figure1_labelled_nodes, FIGURE1_PRE_POST};
    use xupd_xmldom::NodeKind;

    #[test]
    fn figure1_pre_post_labels() {
        // The whole-tree labelling includes the document root; the
        // paper's figure ranks only the ten element/attribute nodes, so
        // compare after normalising out the root and text leaves.
        let tree = figure1_document();
        let mut scheme = XPathAccelerator::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let nodes = figure1_labelled_nodes(&tree);
        // rank the labelled nodes among themselves by (pre, post)
        let mut by_pre: Vec<NodeId> = nodes.clone();
        by_pre.sort_by_key(|&n| labeling.req(n).unwrap().pre);
        let mut by_post: Vec<NodeId> = nodes.clone();
        by_post.sort_by_key(|&n| labeling.req(n).unwrap().post);
        for (i, &n) in nodes.iter().enumerate() {
            let pre = by_pre.iter().position(|&x| x == n).unwrap() as u64;
            let post = by_post.iter().position(|&x| x == n).unwrap() as u64;
            assert_eq!((pre, post), FIGURE1_PRE_POST[i], "node {i}");
        }
    }

    #[test]
    fn dietz_ancestor_test_from_labels() {
        let tree = figure1_document();
        let mut scheme = XPathAccelerator::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                assert_eq!(
                    scheme.relation(
                        Relation::AncestorDescendant,
                        labeling.req(u).unwrap(),
                        labeling.req(v).unwrap()
                    ),
                    Some(tree.is_ancestor(u, v))
                );
                assert_eq!(
                    scheme.relation(
                        Relation::ParentChild,
                        labeling.req(u).unwrap(),
                        labeling.req(v).unwrap()
                    ),
                    Some(tree.parent(v) == Some(u))
                );
            }
        }
    }

    #[test]
    fn every_insertion_relabels_many_nodes() {
        let mut tree = figure1_document();
        let mut scheme = XPathAccelerator::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        let x = tree.create(NodeKind::element("x"));
        tree.insert_before(first, x).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
        assert!(
            rep.relabeled.len() >= 10,
            "a front insertion shifts nearly every node, got {}",
            rep.relabeled.len()
        );
        // order still correct afterwards
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn sibling_relation_unsupported() {
        let tree = figure1_document();
        let mut scheme = XPathAccelerator::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let a = tree.first_child(book).unwrap();
        let b = tree.next_sibling(a).unwrap();
        assert_eq!(
            scheme.relation(Relation::Sibling, labeling.req(a).unwrap(), labeling.req(b).unwrap()),
            None
        );
    }
}
