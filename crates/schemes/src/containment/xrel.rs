//! XRel (Yoshikawa et al., TOIT 2001 — \[30\] in the paper).
//!
//! Region-coordinate containment: each node stores the `(start, end)`
//! positions of its extent in the document (plus level). Because regions
//! derive from byte-like positions, they naturally carry **gaps**, so a
//! bounded number of insertions can be absorbed without touching existing
//! labels — but once a gap is consumed the whole document must be
//! renumbered: the sparse-allocation pattern §3.1.1 describes ("these
//! solutions … only postpone the relabelling process until the interval
//! gaps have been consumed").

use std::cmp::Ordering;
use xupd_labelcore::{
    EncodingRep, InsertReport, Label, Labeling, LabelingScheme, OrderKind, Relation,
    SchemeDescriptor, SchemeStats,
};
use xupd_xmldom::{NodeId, TreeError, XmlTree};

/// A region label: half-open extent `[start, end)` plus level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionLabel {
    /// Region start.
    pub start: u64,
    /// Region end (exclusive).
    pub end: u64,
    /// Nesting depth.
    pub level: u32,
}

impl Label for RegionLabel {
    fn size_bits(&self) -> u64 {
        64 + 64 + 32
    }

    fn display(&self) -> String {
        format!("[{},{})", self.start, self.end)
    }
}

/// Gap factor: positions allocated per node edge at bulk-labelling time.
const DEFAULT_GAP: u64 = 16;

/// The XRel labelling scheme with sparse region allocation.
#[derive(Debug, Clone)]
pub struct XRel {
    gap: u64,
    stats: SchemeStats,
}

impl Default for XRel {
    fn default() -> Self {
        Self::new()
    }
}

impl XRel {
    /// A fresh XRel with the default gap factor.
    pub fn new() -> Self {
        XRel {
            gap: DEFAULT_GAP,
            stats: SchemeStats::default(),
        }
    }

    /// A fresh XRel with a custom gap factor (failure-injection knob —
    /// `gap = 1` makes the very first middle insertion overflow).
    pub fn with_gap(gap: u64) -> Self {
        XRel {
            gap: gap.max(1),
            stats: SchemeStats::default(),
        }
    }

    fn compute(&self, tree: &XmlTree) -> Labeling<RegionLabel> {
        // Allocate start/end positions by a single depth-first walk,
        // advancing the cursor by `gap` at every tag edge.
        let mut labeling = Labeling::with_capacity_for(tree);
        let mut cursor: u64 = 0;
        self.walk(tree, tree.root(), &mut cursor, &mut labeling, 0);
        labeling
    }

    fn walk(
        &self,
        tree: &XmlTree,
        node: NodeId,
        cursor: &mut u64,
        labeling: &mut Labeling<RegionLabel>,
        level: u32,
    ) {
        // slack *before* the node keeps free positions between sibling
        // regions — that inter-region space is what absorbs insertions
        *cursor += self.gap;
        let start = *cursor;
        *cursor += self.gap;
        for child in tree.children(node) {
            self.walk(tree, child, cursor, labeling, level + 1);
        }
        *cursor += self.gap;
        labeling.set(
            node,
            RegionLabel {
                start,
                end: *cursor,
                level,
            },
        );
    }
}

impl LabelingScheme for XRel {
    type Label = RegionLabel;

    fn name(&self) -> &'static str {
        "XRel"
    }

    // Deliberately order-sensitive (the trait default): end-of-range
    // insertions grow ancestor interval bounds by history-dependent
    // amounts, so even footprint-disjoint edits can leave different
    // final labels when interleaved differently —
    // crates/framework/tests/analysis_differential.rs demonstrated the
    // divergence, so XRel keeps the sequential path.

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "XRel",
            citation: "[30]",
            order: OrderKind::Global,
            encoding: EncodingRep::Fixed,
            // Figure 7 row: Global Fixed N P F N N F F F
            declared: SchemeDescriptor::declared_from_letters("NPFNNFFF"),
            in_figure7: true,
        }
    }

    fn label_tree(&mut self, tree: &XmlTree) -> Result<Labeling<RegionLabel>, TreeError> {
        // One depth-first pass (implemented recursively over the document
        // structure, as region allocation inherently is — but it is a
        // single pass, which is what the Recursion property penalises;
        // XRel's declared value is F and the walk touches each node once).
        Ok(self.compute(tree))
    }

    fn on_insert(
        &mut self,
        tree: &XmlTree,
        labeling: &mut Labeling<RegionLabel>,
        node: NodeId,
    ) -> Result<InsertReport, TreeError> {
        // Fit the new node's region into the free positions between its
        // neighbours' regions (inside the parent's region).
        let parent = tree.parent(node).ok_or(TreeError::MissingParent(node))?;
        // unlabelled neighbours belong to the same graft batch: absent
        let lo = match tree.prev_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => l.end,
            None => labeling.req(parent)?.start + 1,
        };
        let hi = match tree.next_sibling(node).and_then(|s| labeling.get(s)) {
            Some(l) => l.start,
            None => labeling.req(parent)?.end - 1,
        };
        let level = labeling.req(parent)?.level + 1;
        // A leaf needs two distinct positions. Claim them in the middle
        // of the free range (midpoint by shift, no division) so both
        // sides keep headroom for later insertions.
        if hi > lo && hi - lo >= 2 {
            let room = hi - lo;
            let start = if room >= 4 { lo + (room >> 1) - 1 } else { lo };
            let end = start + 2;
            labeling.set(node, RegionLabel { start, end, level });
            Ok(InsertReport::clean())
        } else {
            // Gap consumed: renumber the whole document (§3.1.1).
            self.stats.overflow_events += 1;
            let fresh = self.compute(tree);
            let mut relabeled = Vec::new();
            for (id, new_label) in fresh.iter() {
                let changed = labeling.get(id).is_some_and(|old| old != new_label);
                if changed && id != node {
                    relabeled.push(id);
                    self.stats.relabeled_nodes += 1;
                }
                labeling.set(id, *new_label);
            }
            Ok(InsertReport {
                relabeled,
                overflowed: true,
            })
        }
    }

    fn cmp_doc(&self, a: &RegionLabel, b: &RegionLabel) -> Ordering {
        // Document order: by start; an ancestor's region starts before
        // (and encloses) its descendants'.
        a.start.cmp(&b.start).then(b.end.cmp(&a.end))
    }

    fn relation(&self, rel: Relation, a: &RegionLabel, b: &RegionLabel) -> Option<bool> {
        match rel {
            Relation::AncestorDescendant => Some(a.start < b.start && b.end < a.end),
            Relation::ParentChild => {
                Some(a.start < b.start && b.end < a.end && b.level == a.level + 1)
            }
            Relation::Sibling => None,
        }
    }

    fn level(&self, a: &RegionLabel) -> Option<u32> {
        Some(a.level)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_xmldom::sample::figure1_document;
    use xupd_xmldom::NodeKind;

    #[test]
    fn regions_nest_like_the_tree() {
        let tree = figure1_document();
        let mut scheme = XRel::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for &u in &all {
            for &v in &all {
                if u == v {
                    continue;
                }
                assert_eq!(
                    scheme.relation(
                        Relation::AncestorDescendant,
                        labeling.req(u).unwrap(),
                        labeling.req(v).unwrap()
                    ),
                    Some(tree.is_ancestor(u, v)),
                );
            }
        }
        for w in all.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn gaps_absorb_a_few_insertions_then_overflow() {
        let mut tree = figure1_document();
        let mut scheme = XRel::with_gap(4);
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let first = tree.first_child(book).unwrap();
        let mut clean = 0;
        let mut overflowed = false;
        for _ in 0..10 {
            let x = tree.create(NodeKind::element("x"));
            tree.insert_before(first, x).unwrap();
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            if rep.overflowed {
                overflowed = true;
                break;
            }
            clean += 1;
        }
        assert!(clean >= 1, "the gap absorbs at least one insertion");
        assert!(overflowed, "the gap is finite: relabelling only postponed");
        assert!(scheme.stats().overflow_events > 0);
        // renumbering restored order
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn append_at_end_uses_parent_slack() {
        let mut tree = figure1_document();
        let mut scheme = XRel::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let book = tree.document_element().unwrap();
        let x = tree.create(NodeKind::element("x"));
        tree.append_child(book, x).unwrap();
        let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
        assert!(rep.relabeled.is_empty());
        let lx = labeling.req(x).unwrap();
        let lb = labeling.req(book).unwrap();
        assert!(lb.start < lx.start && lx.end < lb.end, "region nested");
    }
}
