//! # xupd-schemes — the dynamic XML labelling schemes surveyed by the paper
//!
//! One module per scheme, every scheme implementing
//! [`xupd_labelcore::LabelingScheme`]:
//!
//! | Figure 7 row | module | label shape |
//! |---|---|---|
//! | XPath Accelerator \[9\] | [`containment::accel`] | `(pre, post, level)` |
//! | XRel \[30\] | [`containment::xrel`] | `(start, end, level)` regions with gaps |
//! | Sector \[23\] | [`containment::sector`] | nested integer sectors |
//! | QRS \[2\] | [`containment::qrs`] | floating-point intervals |
//! | DeweyID \[22\] | [`prefix::dewey`] | `1.2.3` integer paths |
//! | ORDPATH \[18\] | [`prefix::ordpath`] | odd/even careted paths `1.5.2.1` |
//! | DLN \[3\] | [`prefix::dln`] | fixed-width components with sublevels |
//! | LSDX \[7\] | [`prefix::lsdx`] | level + letter strings `2ab.b` |
//! | ImprovedBinary \[13\] | [`prefix::improved_binary`] | binary-string paths `011.0101` |
//! | QED \[14\] | [`prefix::qed`] | quaternary paths, separator-encoded |
//! | CDQS \[16\] | [`prefix::cdqs`] | compact quaternary paths |
//! | Vector \[27\] | [`vector`] | `(x, y)` gradient-ordered vectors |
//!
//! §6 extensions (not in Figure 7, implemented for the paper's announced
//! follow-up evaluation): CDBS ([`prefix::cdbs`]), Com-D ([`prefix::comd`]),
//! the Prime-number scheme ([`prime`]), DDE ([`dde`]) and the §4
//! orthogonality composition QED∘Containment ([`qcontainment`]).
//!
//! [`registry`] / [`registry_figure7`] expose the roster as plain data:
//! a `Vec<SchemeEntry>` of descriptors plus `fn() -> Box<dyn DynScheme>`
//! session factories, which is what the framework's parallel battery,
//! the benches and the differential tests iterate.

pub mod containment;
pub mod dde;
pub mod prefix;
pub mod prime;
pub mod qcontainment;
pub mod registry;
pub mod vector;

pub use registry::{registry, registry_figure7, SchemeEntry};

/// Names of the twelve Figure 7 schemes in the paper's row order.
pub const FIGURE7_ORDER: [&str; 12] = [
    "XPath Accelerator",
    "XRel",
    "Sector",
    "QRS",
    "DeweyID",
    "Ordpath",
    "DLN",
    "LSDX",
    "ImprovedBinary",
    "QED",
    "CDQS",
    "Vector",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_roster_matches_paper_order() {
        let names: Vec<&str> = registry_figure7().iter().map(|e| e.name()).collect();
        assert_eq!(names, FIGURE7_ORDER);
    }

    #[test]
    fn full_roster_extends_figure7() {
        let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 17);
        assert_eq!(&names[..12], &FIGURE7_ORDER);
        assert!(names.contains(&"CDBS"));
        assert!(names.contains(&"Com-D"));
        assert!(names.contains(&"Prime"));
        assert!(names.contains(&"DDE"));
        assert!(names.contains(&"QED∘Containment"));
    }

    #[test]
    fn descriptors_are_self_consistent() {
        for entry in registry() {
            let session = entry.session();
            let d = session.descriptor();
            assert_eq!(d.name, session.name());
            assert!(!d.citation.is_empty());
        }
    }
}
