//! DDE — "From Dewey to a Fully Dynamic XML Labeling Scheme" (Xu, Ling,
//! Wu & Bao, SIGMOD 2009 — \[28\] in the paper).
//!
//! One of the two schemes §6 names for the paper's follow-up evaluation.
//! DDE keeps Dewey's path structure (so ancestor / parent / sibling /
//! level all work) but makes each component a ratio-ordered pair: the
//! initial children are `1, 2, …, n` (denominator 1, printing exactly
//! like Dewey), and an insertion between neighbours takes the component
//! **mediant** — so no insertion ever touches an existing label. Division
//! never happens (ratio comparison is cross-multiplication) and initial
//! labelling is a single streaming pass.

use crate::prefix::path::{CodeOutcome, PrefixScheme, SiblingAlgebra};
use std::cmp::Ordering;
use xupd_labelcore::{
    Compliance, EncodingRep, OrderKind, SchemeDescriptor, SchemeStats, VectorCode,
};

/// A DDE component: a vector ordered by gradient, printed `num` or
/// `num/den`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DdeCode(pub VectorCode);

impl PartialOrd for DdeCode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DdeCode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_gradient(&other.0)
    }
}

/// The DDE sibling algebra.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DdeAlgebra;

impl SiblingAlgebra for DdeAlgebra {
    type Code = DdeCode;

    fn name(&self) -> &'static str {
        "DDE"
    }

    // Labels for footprint-disjoint edits depend only on surrounding
    // structure, never on edit order; claim pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn order_independent(&self) -> bool {
        true
    }

    // Insertions never rewrite neighbour labels, so a cancelled
    // create+delete leaves zero residue; pinned empirically by
    // crates/framework/tests/analysis_differential.rs.
    fn cancellation_neutral(&self) -> bool {
        true
    }

    fn descriptor(&self) -> SchemeDescriptor {
        SchemeDescriptor {
            name: "DDE",
            citation: "[28]",
            order: OrderKind::Hybrid,
            encoding: EncodingRep::Variable,
            // Not a Figure 7 row; declared from the SIGMOD 2009 claims.
            declared: [
                Compliance::Full, // Persistent (mediants never relabel)
                Compliance::Full, // XPath (full Dewey structure)
                Compliance::Full, // Level
                Compliance::Full, // Overflow (fully dynamic claim)
                Compliance::None, // Orthogonal (inherently prefix)
                Compliance::Full, // Compact (Dewey-equal before updates)
                Compliance::Full, // Division (cross-multiplication)
                Compliance::Full, // Recursion (streaming init)
            ],
            in_figure7: false,
        }
    }

    fn bulk(&mut self, n: usize, _stats: &mut SchemeStats) -> Vec<DdeCode> {
        // Exactly Dewey: i/1 for the i-th child. Single pass, no
        // recursion, no division.
        (1..=n as u64)
            .map(|i| DdeCode(VectorCode::new(1, i)))
            .collect()
    }

    fn insert(
        &mut self,
        left: Option<&DdeCode>,
        right: Option<&DdeCode>,
        _stats: &mut SchemeStats,
    ) -> CodeOutcome<DdeCode> {
        let l = left.map(|c| c.0).unwrap_or(VectorCode::LOW);
        let r = right.map(|c| c.0).unwrap_or(VectorCode::HIGH);
        match l.mediant(&r) {
            Some(m) => CodeOutcome::Fresh(DdeCode(m)),
            // The "fully dynamic" claim meets 64-bit reality: zigzag
            // insertion exhausts the components (cf. the paper's §4
            // scepticism about Vector's encoding) — renumber.
            None => CodeOutcome::RenumberAll,
        }
    }

    fn code_bits(code: &DdeCode) -> u64 {
        code.0.size_bits()
    }

    fn code_display(code: &DdeCode) -> String {
        let v = code.0;
        if v.x == 1 {
            v.y.to_string()
        } else {
            format!("{}/{}", v.y, v.x)
        }
    }
}

/// The DDE labelling scheme.
pub type Dde = PrefixScheme<DdeAlgebra>;

impl Dde {
    /// A fresh DDE scheme.
    pub fn new() -> Self {
        PrefixScheme::from_algebra(DdeAlgebra)
    }
}

impl Default for Dde {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xupd_labelcore::{Label, LabelingScheme, Relation};
    use xupd_xmldom::sample::figure3_shape;
    use xupd_xmldom::{NodeKind, XmlTree};

    #[test]
    fn initial_labels_print_exactly_like_dewey() {
        let (tree, nodes) = figure3_shape();
        let mut scheme = Dde::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let shown: Vec<String> = nodes
            .iter()
            .map(|&n| labeling.req(n).unwrap().display())
            .collect();
        assert_eq!(
            shown,
            ["1", "1.1", "1.1.1", "1.1.2", "1.2", "1.2.1", "1.3", "1.3.1", "1.3.2", "1.3.3"]
        );
    }

    #[test]
    fn insertions_are_persistent_and_ordered() {
        let (mut tree, nodes) = figure3_shape();
        let mut scheme = Dde::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let snapshot: Vec<_> = nodes
            .iter()
            .map(|&n| (n, labeling.req(n).unwrap().clone()))
            .collect();
        for (i, &n) in nodes.iter().enumerate().take(6) {
            let x = tree.create(NodeKind::element("x"));
            if i % 2 == 0 {
                tree.insert_before(n, x).unwrap();
            } else {
                tree.insert_after(n, x).unwrap();
            }
            let rep = scheme.on_insert(&tree, &mut labeling, x).unwrap();
            assert!(rep.relabeled.is_empty());
        }
        for (n, old) in snapshot {
            assert_eq!(labeling.req(n).unwrap(), &old);
        }
        let order = tree.ids_in_doc_order();
        for w in order.windows(2) {
            assert_eq!(
                scheme.cmp_doc(labeling.req(w[0]).unwrap(), labeling.req(w[1]).unwrap()),
                Ordering::Less
            );
        }
    }

    #[test]
    fn full_xpath_relations_like_dewey() {
        let (tree, _) = figure3_shape();
        let mut scheme = Dde::new();
        let labeling = scheme.label_tree(&tree).unwrap();
        let all = tree.ids_in_doc_order();
        for &x in &all {
            for &y in &all {
                if x == y {
                    continue;
                }
                let (lx, ly) = (labeling.req(x).unwrap(), labeling.req(y).unwrap());
                assert_eq!(
                    scheme.relation(Relation::AncestorDescendant, lx, ly),
                    Some(tree.is_ancestor(x, y))
                );
                assert_eq!(
                    scheme.relation(Relation::ParentChild, lx, ly),
                    Some(tree.parent(y) == Some(x))
                );
            }
        }
        for &x in &all {
            assert_eq!(scheme.level(labeling.req(x).unwrap()), Some(tree.depth(x)));
        }
    }

    #[test]
    fn between_insert_prints_as_a_ratio() {
        let mut tree = XmlTree::new();
        let r = tree.root();
        let p = tree.create(NodeKind::element("p"));
        tree.append_child(r, p).unwrap();
        let a = tree.create(NodeKind::element("a"));
        let b = tree.create(NodeKind::element("b"));
        tree.append_child(p, a).unwrap();
        tree.append_child(p, b).unwrap();
        let mut scheme = Dde::new();
        let mut labeling = scheme.label_tree(&tree).unwrap();
        let x = tree.create(NodeKind::element("x"));
        tree.insert_after(a, x).unwrap();
        scheme.on_insert(&tree, &mut labeling, x).unwrap();
        // mediant of 1/1 and 2/1 is 3/2
        assert_eq!(labeling.req(x).unwrap().display(), "1.3/2");
    }
}
