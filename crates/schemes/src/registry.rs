//! The object-safe scheme registry.
//!
//! [`registry`] / [`registry_figure7`] return the scheme roster as plain
//! data: each [`SchemeEntry`] carries the static [`SchemeDescriptor`]
//! plus a `fn() -> Box<dyn DynScheme>` factory producing a fresh
//! session. Factories are `fn` pointers — `Copy + Send + Sync` — so a
//! parallel battery (`xupd_exec::par_map`) can hand one entry to each
//! worker and let the worker construct its scheme locally; the boxed
//! sessions themselves never cross threads.
//!
//! [`with_scheme_roster!`](crate::with_scheme_roster) is the single
//! source of truth for the roster; downstream crates (e.g. the encoding
//! crate's document registry) invoke it with their own callback macro to
//! generate per-scheme code without this crate having to know about
//! their types.

use xupd_labelcore::{DynScheme, SchemeDescriptor, SchemeSession};

/// One roster row: the scheme's static self-description and a factory
/// for fresh, empty sessions over it.
#[derive(Clone)]
pub struct SchemeEntry {
    /// The scheme's declared Figure 7 row and metadata.
    pub descriptor: SchemeDescriptor,
    /// Build a fresh session (scheme + empty labelling).
    pub factory: fn() -> Box<dyn DynScheme>,
}

impl std::fmt::Debug for SchemeEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeEntry")
            .field("descriptor", &self.descriptor)
            .finish_non_exhaustive()
    }
}

impl SchemeEntry {
    /// The scheme's Figure 7 name.
    pub fn name(&self) -> &'static str {
        self.descriptor.name
    }

    /// A fresh session over a new scheme instance.
    pub fn session(&self) -> Box<dyn DynScheme> {
        (self.factory)()
    }
}

/// Expand a callback macro with the roster's fully-qualified scheme
/// types. `$crate`-prefixed paths keep the expansion valid from any
/// crate:
///
/// ```ignore
/// macro_rules! count { ($($ty:ty),+ $(,)?) => { [$(stringify!($ty)),+].len() } }
/// let n = xupd_schemes::with_scheme_roster!(figure7, count); // 12
/// ```
///
/// The first argument selects the roster: `figure7` (the paper's twelve
/// rows, in row order) or `all` (Figure 7 plus the §6 extensions, 17
/// schemes).
#[macro_export]
macro_rules! with_scheme_roster {
    (figure7, $cb:ident) => {
        $cb! {
            $crate::containment::accel::XPathAccelerator,
            $crate::containment::xrel::XRel,
            $crate::containment::sector::Sector,
            $crate::containment::qrs::Qrs,
            $crate::prefix::dewey::DeweyId,
            $crate::prefix::ordpath::OrdPath,
            $crate::prefix::dln::Dln,
            $crate::prefix::lsdx::Lsdx,
            $crate::prefix::improved_binary::ImprovedBinary,
            $crate::prefix::qed::Qed,
            $crate::prefix::cdqs::Cdqs,
            $crate::vector::VectorScheme,
        }
    };
    (all, $cb:ident) => {
        $cb! {
            $crate::containment::accel::XPathAccelerator,
            $crate::containment::xrel::XRel,
            $crate::containment::sector::Sector,
            $crate::containment::qrs::Qrs,
            $crate::prefix::dewey::DeweyId,
            $crate::prefix::ordpath::OrdPath,
            $crate::prefix::dln::Dln,
            $crate::prefix::lsdx::Lsdx,
            $crate::prefix::improved_binary::ImprovedBinary,
            $crate::prefix::qed::Qed,
            $crate::prefix::cdqs::Cdqs,
            $crate::vector::VectorScheme,
            $crate::prefix::cdbs::Cdbs,
            $crate::prefix::comd::ComD,
            $crate::prime::Prime,
            $crate::dde::Dde,
            $crate::qcontainment::QedContainment,
        }
    };
}

macro_rules! entries_vec {
    ($($ty:ty),+ $(,)?) => {
        vec![
            $(
                SchemeEntry {
                    descriptor: <$ty>::new().descriptor(),
                    factory: || Box::new(SchemeSession::new(<$ty>::new())) as Box<dyn DynScheme>,
                },
            )+
        ]
    };
}

/// The twelve Figure 7 schemes, in the paper's row order.
pub fn registry_figure7() -> Vec<SchemeEntry> {
    use xupd_labelcore::LabelingScheme;
    with_scheme_roster!(figure7, entries_vec)
}

/// Every implemented scheme: Figure 7 roster plus the §6 extensions
/// (CDBS, Com-D, Prime, DDE, QED∘Containment), in a stable order.
pub fn registry() -> Vec<SchemeEntry> {
    use xupd_labelcore::LabelingScheme;
    with_scheme_roster!(all, entries_vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FIGURE7_ORDER;

    #[test]
    fn figure7_registry_matches_paper_order() {
        let names: Vec<&str> = registry_figure7().iter().map(|e| e.name()).collect();
        assert_eq!(names, FIGURE7_ORDER);
    }

    #[test]
    fn full_registry_extends_figure7() {
        let reg = registry();
        let names: Vec<&str> = reg.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 17);
        assert_eq!(&names[..12], &FIGURE7_ORDER);
        for extra in ["CDBS", "Com-D", "Prime", "DDE", "QED∘Containment"] {
            assert!(names.contains(&extra), "missing {extra}");
        }
        assert_eq!(reg.iter().filter(|e| e.descriptor.in_figure7).count(), 12);
    }

    #[test]
    fn factories_build_matching_sessions() {
        for entry in registry() {
            let session = entry.session();
            assert_eq!(session.name(), entry.name());
            assert_eq!(session.descriptor().name, entry.descriptor.name);
            assert_eq!(session.labeled_len(), 0, "factory sessions start empty");
        }
    }

}
