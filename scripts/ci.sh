#!/usr/bin/env bash
# Canonical offline verification entrypoint.
#
# The workspace is hermetic: no external crates, so everything below
# must succeed with networking disabled and an empty registry cache.
# Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> tier-1: build + root-package tests"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> static invariants (xupd-lint: fails on any unsuppressed finding)"
cargo run --release -q -p xupd-lint -- --workspace

echo "==> figure 7 regeneration (declared + measured matrix)"
cargo run --release -q -p xupd-bench --bin figure7

echo "==> bench smoke (every bench_* bin, 1 timed iter, throwaway results dir)"
# Keeps the bench bins from rotting without touching the committed
# results/BENCH_*.json baselines.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for bench_bin in bench_bulk_labeling bench_label_growth bench_query_eval \
                 bench_update_cost bench_axis_index; do
  echo "    -> ${bench_bin}"
  XUPD_BENCH_ITERS=1 XUPD_RESULTS_DIR="$smoke_dir" \
    cargo run --release -q -p xupd-bench --bin "$bench_bin" > /dev/null
done

echo "==> ci.sh: all checks passed"
