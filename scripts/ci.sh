#!/usr/bin/env bash
# Canonical offline verification entrypoint.
#
# The workspace is hermetic: no external crates, so everything below
# must succeed with networking disabled and an empty registry cache.
# Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> tier-1: build + root-package tests"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> static invariants (xupd-lint: fails on any unsuppressed finding)"
cargo run --release -q -p xupd-lint -- --workspace

echo "==> figure 7 regeneration (declared + measured matrix)"
cargo run --release -q -p xupd-bench --bin figure7

echo "==> XUPD_THREADS=1 golden equivalence (pool width must be invisible in results/*)"
# Every committed table golden is the stdout of its regenerator. The
# exec pool's determinism contract says the worker count never changes a
# byte of output: re-render the full set sequentially (XUPD_THREADS=1
# takes the inline pre-pool path) and at a fixed parallel width, and
# diff both against the committed goldens.
equiv_dir="$(mktemp -d)"
for threads in 1 4; do
  for table in figure7 figures growth_table update_cost_table ablation_table; do
    XUPD_THREADS="$threads" cargo run --release -q -p xupd-bench --bin "$table" \
      > "$equiv_dir/$table.txt"
    diff -u "results/$table.txt" "$equiv_dir/$table.txt" \
      || { echo "    FAIL: $table.txt diverges at XUPD_THREADS=$threads"; exit 1; }
  done
  XUPD_THREADS="$threads" cargo run --release -q -p xupd-bench --bin figure7 -- --all \
    > "$equiv_dir/figure7_all.txt"
  diff -u results/figure7_all.txt "$equiv_dir/figure7_all.txt" \
    || { echo "    FAIL: figure7_all.txt diverges at XUPD_THREADS=$threads"; exit 1; }
  echo "    ok: 6 table goldens byte-identical at XUPD_THREADS=$threads"
done
rm -rf "$equiv_dir"

echo "==> bench smoke (every bench_* bin, 1 timed iter, throwaway results dir)"
# Keeps the bench bins from rotting without touching the committed
# results/BENCH_*.json baselines.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for bench_bin in bench_bulk_labeling bench_label_growth bench_query_eval \
                 bench_update_cost bench_axis_index bench_matrix_pool \
                 bench_batch_update bench_log_analysis bench_incremental_queries \
                 bench_store bench_flux; do
  echo "    -> ${bench_bin}"
  XUPD_BENCH_ITERS=1 XUPD_RESULTS_DIR="$smoke_dir" \
    cargo run --release -q -p xupd-bench --bin "$bench_bin" > /dev/null
done

echo "==> XUPD_THREADS={1,4} par_apply_independent equivalence"
# The analysis differential suite asserts every shard of
# par_apply_independent matches sequentially applying that component's
# sub-log, across all 17 schemes. Running it at both pool widths pins
# the thread-count-invariance contract the analyzer's parallel
# certificate rests on.
for threads in 1 4; do
  XUPD_THREADS="$threads" cargo test --release -q -p xupd-framework \
    --test analysis_differential > /dev/null \
    || { echo "    FAIL: analysis differential suite at XUPD_THREADS=$threads"; exit 1; }
  echo "    ok: shards match sequential apply at XUPD_THREADS=$threads"
done

echo "==> XUPD_THREADS={1,4} querycache differential (cached results byte-identical to fresh eval)"
# The query-cache differential suite drives all 17 schemes through mixed
# batches and asserts cached rows/strings equal a from-scratch oracle
# after every absorb. Running it at both pool widths pins that the
# scheme fan-out never leaks into classification or repair.
for threads in 1 4; do
  XUPD_THREADS="$threads" cargo test --release -q -p xupd-framework \
    --test querycache_differential > /dev/null \
    || { echo "    FAIL: querycache differential suite at XUPD_THREADS=$threads"; exit 1; }
  echo "    ok: cache matches fresh evaluation at XUPD_THREADS=$threads"
done

echo "==> XUPD_THREADS={1,4} store differential (sharded fleet state byte-identical to reference)"
# The store differential suite replays a seeded fleet workload through
# the sharded writer lanes at widths {1,2,8} and asserts the final
# state_dump is byte-identical to the sequential reference executor,
# across four scheme families. Running the suite itself at both pool
# widths additionally pins that XUPD_THREADS never leaks into state.
for threads in 1 4; do
  XUPD_THREADS="$threads" cargo test --release -q --test store_differential > /dev/null \
    || { echo "    FAIL: store differential suite at XUPD_THREADS=$threads"; exit 1; }
  echo "    ok: fleet state matches sequential reference at XUPD_THREADS=$threads"
done

echo "==> XUPD_THREADS={1,4} flux differential (compiled plans byte-identical to sequential apply)"
# The flux differential suite proves the DSL compiler's certified-plan
# apply path leaves byte-identical trees and labels versus sequential
# apply across all 17 schemes, that statically rejected programs also
# fail dynamically, and that the lowering walker agrees with the
# encoded-table evaluator. Both pool widths, same contract.
for threads in 1 4; do
  XUPD_THREADS="$threads" cargo test --release -q -p xupd-flux > /dev/null \
    || { echo "    FAIL: flux suite at XUPD_THREADS=$threads"; exit 1; }
  echo "    ok: flux compiler differential + diagnostics at XUPD_THREADS=$threads"
done

echo "==> XUPD_THREADS sample-order equivalence for the batch-update + log-analysis benches"
# Timings vary run to run, but the sample roster (names, in order) is part
# of the bench contract: it must not depend on the pool width, or diffing
# committed BENCH json between commits becomes meaningless.
order_dir="$(mktemp -d)"
for order_bin in bench_batch_update bench_log_analysis bench_incremental_queries bench_flux; do
  json_name="BENCH_${order_bin#bench_}.json"
  for threads in 1 4; do
    XUPD_BENCH_ITERS=1 XUPD_RESULTS_DIR="$order_dir/t$threads" XUPD_THREADS="$threads" \
      cargo run --release -q -p xupd-bench --bin "$order_bin" > /dev/null
  done
  python3 - "$order_dir/t1/$json_name" "$order_dir/t4/$json_name" \
           "results/$json_name" "$order_bin" <<'PYEOF'
import json, sys
names = [[s["name"] for s in json.load(open(p))["samples"]] for p in sys.argv[1:4]]
bin_name = sys.argv[4]
if names[0] != names[1]:
    print(f"    FAIL: {bin_name} sample order differs between XUPD_THREADS=1 and 4")
    sys.exit(1)
if names[0] != names[2]:
    print(f"    FAIL: {bin_name} sample order diverged from the committed baseline")
    sys.exit(1)
print(f"    ok: {bin_name}: {len(names[0])} samples, identical roster at XUPD_THREADS=1/4 and in the baseline")
PYEOF
done
rm -rf "$order_dir"

echo "==> alloc diff (report-only: warn when a smoke sample allocates >25% more than its baseline)"
# The counting allocator makes allocation counts deterministic per
# iteration, so even a 1-iter smoke run is comparable to the committed
# baseline. This step never fails the build — it exists to surface
# allocation regressions in the hot path early.
for smoke_json in "$smoke_dir"/BENCH_*.json; do
  base_json="results/$(basename "$smoke_json")"
  [ -f "$base_json" ] || continue
  grep -q '"allocs"' "$base_json" || continue  # pre-instrumentation baseline
  python3 - "$base_json" "$smoke_json" <<'PYEOF' || true
import json, sys
base_path, smoke_path = sys.argv[1], sys.argv[2]
base = {s["name"]: s for s in json.load(open(base_path))["samples"]}
warned = 0
for s in json.load(open(smoke_path))["samples"]:
    b = base.get(s["name"])
    if b is None or b.get("allocs", 0) == 0:
        continue
    if s.get("allocs", 0) > b["allocs"] * 1.25:
        warned += 1
        print(f'    WARN {s["name"]}: allocs {b["allocs"]} -> {s["allocs"]} '
              f'(+{100.0 * s["allocs"] / b["allocs"] - 100.0:.0f}%)')
if not warned:
    print(f'    ok: {base_path} — no sample grew allocations by >25%')
PYEOF
done

echo "==> ci.sh: all checks passed"
