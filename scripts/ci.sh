#!/usr/bin/env bash
# Canonical offline verification entrypoint.
#
# The workspace is hermetic: no external crates, so everything below
# must succeed with networking disabled and an empty registry cache.
# Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> tier-1: build + root-package tests"
cargo build --release
cargo test -q

echo "==> full workspace tests"
cargo test --workspace -q

echo "==> static invariants (xupd-lint: fails on any unsuppressed finding)"
cargo run --release -q -p xupd-lint -- --workspace

echo "==> figure 7 regeneration (declared + measured matrix)"
cargo run --release -q -p xupd-bench --bin figure7

echo "==> ci.sh: all checks passed"
