//! Golden tests for the paper's Figures 1–6 (experiment ids F1–F6 in
//! DESIGN.md): the worked labelled trees in the paper are exact expected
//! output for our implementations.

use xml_update_props::encoding::figure2::figure2_table;
use xml_update_props::labelcore::{Label, LabelingScheme};
use xml_update_props::schemes::prefix::dewey::DeweyId;
use xml_update_props::schemes::prefix::improved_binary::ImprovedBinary;
use xml_update_props::schemes::prefix::lsdx::Lsdx;
use xml_update_props::schemes::prefix::ordpath::OrdPath;
use xml_update_props::xmldom::sample::{
    figure1_document, figure1_labelled_nodes, figure3_shape, FIGURE1_PRE_POST, FIGURE1_XML,
    FIGURE2_ROWS,
};
use xml_update_props::xmldom::{parse, NodeId, NodeKind, XmlTree};

/// F1 — Figure 1(b): pre/post labels of the sample document's ten
/// element/attribute nodes.
#[test]
fn figure1_pre_post_labels_golden() {
    let tree = parse(FIGURE1_XML).expect("sample parses");
    let nodes = figure1_labelled_nodes(&tree);
    assert_eq!(nodes.len(), 10);
    let pre_seq = nodes.clone();
    let post_seq: Vec<NodeId> = tree.postorder().filter(|n| nodes.contains(n)).collect();
    for (i, &n) in nodes.iter().enumerate() {
        let pre = pre_seq.iter().position(|&x| x == n).unwrap() as u64;
        let post = post_seq.iter().position(|&x| x == n).unwrap() as u64;
        assert_eq!(
            (pre, post),
            FIGURE1_PRE_POST[i],
            "node {} ({:?})",
            i,
            tree.kind(n)
        );
    }
}

/// F2 — Figure 2: the encoding table, cell for cell.
#[test]
fn figure2_encoding_table_golden() {
    let rows = figure2_table(&figure1_document());
    assert_eq!(rows.len(), FIGURE2_ROWS.len());
    for (row, &(pre, post, ty, parent, name, value)) in rows.iter().zip(&FIGURE2_ROWS) {
        assert_eq!(
            (row.pre, row.post, row.node_type.as_str(), row.parent_pre),
            (pre, post, ty, parent),
            "{name}"
        );
        assert_eq!(row.name, name);
        assert_eq!(row.value, value);
    }
}

fn labelled_display<S: LabelingScheme>(mut scheme: S) -> (XmlTree, Vec<String>) {
    let (tree, nodes) = figure3_shape();
    let labeling = scheme.label_tree(&tree).unwrap();
    let shown = nodes
        .iter()
        .map(|&n| labeling.req(n).unwrap().display())
        .collect();
    (tree, shown)
}

/// F3 — Figure 3: the DeweyID labelled tree.
#[test]
fn figure3_deweyid_golden() {
    let (_, shown) = labelled_display(DeweyId::new());
    assert_eq!(
        shown,
        ["1", "1.1", "1.1.1", "1.1.2", "1.2", "1.2.1", "1.3", "1.3.1", "1.3.2", "1.3.3"]
    );
}

/// F4 — Figure 4: ORDPATH initial odd labels plus the three grey
/// insertions (right: +2; left: −2 giving `…,-1`; between: caret `2.1`).
#[test]
fn figure4_ordpath_golden() {
    let (_, shown) = labelled_display(OrdPath::new());
    assert_eq!(
        shown,
        ["1", "1.1", "1.1.1", "1.1.3", "1.3", "1.3.1", "1.5", "1.5.1", "1.5.3", "1.5.5"]
    );

    // the grey nodes on a two-child sibling list, as in the figure's
    // third subtree
    let mut tree = XmlTree::new();
    let root = tree.create(NodeKind::element("r"));
    tree.append_child(tree.root(), root).unwrap();
    let c1 = tree.create(NodeKind::element("c1"));
    let c2 = tree.create(NodeKind::element("c2"));
    tree.append_child(root, c1).unwrap();
    tree.append_child(root, c2).unwrap();
    let mut scheme = OrdPath::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();

    let right = tree.create(NodeKind::element("right"));
    tree.append_child(root, right).unwrap();
    scheme.on_insert(&tree, &mut labeling, right).unwrap();
    assert_eq!(labeling.req(right).unwrap().display(), "1.5", "rightmost + 2");

    let left = tree.create(NodeKind::element("left"));
    tree.prepend_child(root, left).unwrap();
    scheme.on_insert(&tree, &mut labeling, left).unwrap();
    assert_eq!(labeling.req(left).unwrap().display(), "1.-1", "leftmost − 2");

    let mid = tree.create(NodeKind::element("mid"));
    tree.insert_after(c1, mid).unwrap();
    scheme.on_insert(&tree, &mut labeling, mid).unwrap();
    assert_eq!(labeling.req(mid).unwrap().display(), "1.2.1", "careting-in");
}

/// F5 — Figure 5: LSDX initial letters and the three grey insertions
/// (before-first prefixes `a`; after-last increments; between extends).
#[test]
fn figure5_lsdx_golden() {
    let (tree, shown) = labelled_display(Lsdx::new());
    // root 1a.b; its children use b, c, d as in the figure's 1a.b/1a.c/1a.d
    assert_eq!(shown[0], "1a.b");
    assert_eq!(&shown[1], "2ab.b");
    let root_elem = tree.document_element().unwrap();
    let kids: Vec<NodeId> = tree.children(root_elem).collect();
    assert_eq!(kids.len(), 3);

    let mut tree = tree;
    let mut scheme = Lsdx::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();

    // before the first grandchild → positional id "ab" (figure: 2ab.ab)
    let first_kid = kids[0];
    let gfirst = tree.first_child(first_kid).unwrap();
    let b = tree.create(NodeKind::element("before"));
    tree.insert_before(gfirst, b).unwrap();
    scheme.on_insert(&tree, &mut labeling, b).unwrap();
    assert_eq!(
        labeling.req(b).unwrap().path.own_code().unwrap(),
        "ab",
        "prefixing an a"
    );

    // after the last child of the second kid → increment (figure: 2ac.c)
    let second = kids[1];
    let a = tree.create(NodeKind::element("after"));
    tree.append_child(second, a).unwrap();
    scheme.on_insert(&tree, &mut labeling, a).unwrap();
    assert_eq!(labeling.req(a).unwrap().path.own_code().unwrap(), "c");

    // between the third kid's first two children → "bb" (figure: 2ad.bb)
    let third = kids[2];
    let tfirst = tree.first_child(third).unwrap();
    let m = tree.create(NodeKind::element("mid"));
    tree.insert_after(tfirst, m).unwrap();
    scheme.on_insert(&tree, &mut labeling, m).unwrap();
    assert_eq!(labeling.req(m).unwrap().path.own_code().unwrap(), "bb");
}

/// F6 — Figure 6: ImprovedBinary initial codes 01 / 0101 / 011 and the
/// three grey insertions 0101.001, 0101.011, 011.0101-style.
#[test]
fn figure6_improved_binary_golden() {
    let (tree, _) = figure3_shape();
    let mut scheme = ImprovedBinary::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();
    let root_elem = tree.document_element().unwrap();
    let kids: Vec<NodeId> = tree.children(root_elem).collect();
    let codes: Vec<String> = kids
        .iter()
        .map(|&k| labeling.req(k).unwrap().path.own_code().unwrap().to_string())
        .collect();
    assert_eq!(codes, ["01", "0101", "011"]);

    let mut tree = tree;
    // before first child of the 0101 node → its 01 becomes 001
    let second = kids[1];
    let sfirst = tree.first_child(second).unwrap();
    let before = tree.create(NodeKind::element("before"));
    tree.insert_before(sfirst, before).unwrap();
    scheme.on_insert(&tree, &mut labeling, before).unwrap();
    assert_eq!(
        labeling.req(before).unwrap().path.own_code().unwrap().to_string(),
        "001"
    );

    // after last child of the 0101 node → 01 + 1 = 011
    let after = tree.create(NodeKind::element("after"));
    tree.append_child(second, after).unwrap();
    scheme.on_insert(&tree, &mut labeling, after).unwrap();
    assert_eq!(
        labeling.req(after).unwrap().path.own_code().unwrap().to_string(),
        "011"
    );

    // between two children of the 011 node → AssignMiddleSelfLabel
    let third = kids[2];
    let tfirst = tree.first_child(third).unwrap();
    let mid = tree.create(NodeKind::element("mid"));
    tree.insert_after(tfirst, mid).unwrap();
    scheme.on_insert(&tree, &mut labeling, mid).unwrap();
    let mid_code = labeling.req(mid).unwrap().path.own_code().unwrap().to_string();
    // strictly between its neighbours, ends in 1 (the scheme invariant)
    let left_code = labeling.req(tfirst).unwrap().path.own_code().unwrap().to_string();
    assert!(left_code < mid_code);
    assert!(mid_code.ends_with('1'));
}
