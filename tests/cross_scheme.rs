//! Cross-crate integration: every scheme × every workload keeps the
//! Definition 1 invariants, and the encoding/XPath layer returns
//! identical answers regardless of the labelling scheme underneath.

use xml_update_props::encoding::{parse_xpath, EncodedDocument};
use xml_update_props::framework::driver::run_script;
use xml_update_props::framework::verify::verify;
use xml_update_props::labelcore::{LabelingScheme, SchemeVisitor};
use xml_update_props::schemes::{visit_all_schemes, visit_figure7_schemes};
use xml_update_props::workloads::{docs, Script, ScriptKind};
use xml_update_props::xmldom::{serialize_compact, XmlTree};

/// Every scheme stays sound (ordered, unique, correct relations) across
/// the standard workloads — except LSDX, whose documented collisions are
/// expected and asserted separately.
#[test]
fn all_schemes_sound_across_workloads() {
    struct Soundness;
    impl SchemeVisitor for Soundness {
        fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
            let name = scheme.name();
            for (kind, seed) in [
                (ScriptKind::Random, 11),
                (ScriptKind::Uniform, 12),
                (ScriptKind::MixedDelete, 13),
                (ScriptKind::AppendOnly, 14),
            ] {
                let mut tree = docs::random_tree(77, 150);
                let mut labeling = scheme.label_tree(&tree).unwrap();
                let script = Script::generate(kind, 120, tree.len(), seed);
                run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
                let v = verify(&tree, &scheme, &labeling, 200, seed).unwrap();
                if name == "LSDX" || name == "Com-D" {
                    continue; // collisions possible; asserted below
                }
                assert!(v.is_sound(), "{name} unsound after {}: {v:?}", kind.name());
            }
        }
    }
    visit_all_schemes(&mut Soundness);
}

/// LSDX's uniqueness failure is reproducible — and is the *only* kind of
/// violation it exhibits on collision-free workloads.
#[test]
fn lsdx_collisions_are_the_documented_failure() {
    use xml_update_props::schemes::prefix::lsdx::Lsdx;
    // append-only workloads never hit the between-collision corner
    let mut tree = docs::random_tree(5, 100);
    let mut scheme = Lsdx::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();
    let script = Script::generate(ScriptKind::AppendOnly, 150, tree.len(), 3);
    run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
    let v = verify(&tree, &scheme, &labeling, 200, 9).unwrap();
    assert!(v.is_sound(), "append-only LSDX is collision-free: {v:?}");
}

/// The encoding layer is scheme-independent: same document, same
/// queries, same answers under every Figure 7 scheme.
#[test]
fn xpath_answers_identical_across_schemes() {
    let tree = docs::xmark_like(31, 90);
    let queries = [
        "/site/regions/*/item",
        "//item/name",
        "//person/@id",
        "//bidder/..",
        "//item[@id=\"item0_0\"]/quantity",
    ];

    struct Collect<'a> {
        tree: &'a XmlTree,
        queries: &'a [&'a str],
        results: Vec<(String, Vec<Vec<String>>)>,
    }
    impl SchemeVisitor for Collect<'_> {
        fn visit<S: LabelingScheme>(&mut self, scheme: S) {
            let name = scheme.name().to_string();
            let enc = EncodedDocument::encode(scheme, self.tree).unwrap();
            let res = self
                .queries
                .iter()
                .map(|q| {
                    parse_xpath(q)
                        .unwrap()
                        .evaluate(&enc)
                        .into_iter()
                        .map(|i| enc.string_value(i))
                        .collect::<Vec<_>>()
                })
                .collect();
            self.results.push((name, res));
        }
    }
    let mut c = Collect {
        tree: &tree,
        queries: &queries,
        results: Vec::new(),
    };
    visit_figure7_schemes(&mut c);
    let (ref_name, ref_res) = &c.results[0];
    for (name, res) in &c.results[1..] {
        assert_eq!(res, ref_res, "{name} disagrees with {ref_name}");
    }
    // at least one query returned something (the test is non-vacuous)
    assert!(ref_res.iter().any(|r| !r.is_empty()));
}

/// Reconstruction round-trip through every scheme: document → encode →
/// reconstruct → serialize equals the original serialization.
#[test]
fn reconstruction_round_trip_every_scheme() {
    let tree = docs::xmark_like(8, 45);
    let original = serialize_compact(&tree);

    struct RoundTrip<'a> {
        tree: &'a XmlTree,
        original: &'a str,
    }
    impl SchemeVisitor for RoundTrip<'_> {
        fn visit<S: LabelingScheme>(&mut self, scheme: S) {
            let name = scheme.name();
            let enc = EncodedDocument::encode(scheme, self.tree).unwrap();
            let back = xml_update_props::encoding::reconstruct::reconstruct(&enc).unwrap();
            assert_eq!(serialize_compact(&back), self.original, "{name}");
        }
    }
    visit_all_schemes(&mut RoundTrip {
        tree: &tree,
        original: &original,
    });
}

/// Deep documents exercise path-length behaviour (and the Prime scheme's
/// big-integer products) in every scheme.
#[test]
fn deep_document_all_schemes() {
    struct Deep;
    impl SchemeVisitor for Deep {
        fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
            let tree = docs::deep(40);
            let labeling = scheme.label_tree(&tree).unwrap();
            assert_eq!(labeling.len(), tree.len(), "{}", scheme.name());
            let v = verify(&tree, &scheme, &labeling, 100, 1).unwrap();
            assert!(v.is_sound(), "{}: {v:?}", scheme.name());
        }
    }
    visit_all_schemes(&mut Deep);
}

/// Wide documents exercise sibling-code allocation in every scheme.
#[test]
fn wide_document_all_schemes() {
    struct Wide;
    impl SchemeVisitor for Wide {
        fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
            let tree = docs::wide(500);
            let labeling = scheme.label_tree(&tree).unwrap();
            let v = verify(&tree, &scheme, &labeling, 200, 2).unwrap();
            assert!(v.is_sound(), "{}: {v:?}", scheme.name());
        }
    }
    visit_all_schemes(&mut Wide);
}

/// Subtree insertion (the paper's third structural-update class,
/// §3.1.2's "serialised as a sequence of nodes and inserted
/// individually") works for every scheme and preserves order.
#[test]
fn subtree_grafting_all_schemes() {
    use xml_update_props::framework::driver::graft_subtree;
    use xml_update_props::xmldom::NodeId;

    fn clone_into(src: &XmlTree, node: NodeId, dst: &mut XmlTree) -> NodeId {
        let copy = dst.create(src.kind(node).clone());
        for child in src.children(node) {
            let c = clone_into(src, child, dst);
            dst.append_child(copy, c).expect("fresh node is detached");
        }
        copy
    }

    struct Graft;
    impl SchemeVisitor for Graft {
        fn visit<S: LabelingScheme>(&mut self, mut scheme: S) {
            let name = scheme.name();
            let mut tree = docs::book();
            let mut labeling = scheme.label_tree(&tree).unwrap();
            let donor = docs::xmark_like(4, 12);
            let donor_root = donor.document_element().unwrap();

            // graft in three positions: append, prepend, between
            let book = tree.document_element().unwrap();
            let g1 = clone_into(&donor, donor_root, &mut tree);
            tree.append_child(book, g1).unwrap();
            graft_subtree(&tree, &mut scheme, &mut labeling, g1).unwrap();

            let first = tree.first_child(book).unwrap();
            let g2 = clone_into(&donor, donor_root, &mut tree);
            tree.insert_before(first, g2).unwrap();
            graft_subtree(&tree, &mut scheme, &mut labeling, g2).unwrap();

            let second = tree.next_sibling(g2).unwrap();
            let g3 = clone_into(&donor, donor_root, &mut tree);
            tree.insert_after(second, g3).unwrap();
            graft_subtree(&tree, &mut scheme, &mut labeling, g3).unwrap();

            assert_eq!(labeling.len(), tree.len(), "{name}");
            let v = verify(&tree, &scheme, &labeling, 250, 17).unwrap();
            if name != "LSDX" && name != "Com-D" {
                assert!(v.is_sound(), "{name} after grafting: {v:?}");
            }
        }
    }
    visit_all_schemes(&mut Graft);
}
