//! Cross-crate integration: every scheme × every workload keeps the
//! Definition 1 invariants, and the encoding/XPath layer returns
//! identical answers regardless of the labelling scheme underneath.
//!
//! The batteries iterate the object-safe registries
//! (`schemes::registry()` for labelling sessions,
//! `encoding::document_registry()` for encoded documents) and fan out
//! one pool worker per scheme via `exec::par_map` — results come back
//! in roster order, so assertions are deterministic at any
//! `XUPD_THREADS`.

use xml_update_props::encoding::{document_registry, document_registry_figure7, parse_xpath};
use xml_update_props::exec::par_map;
use xml_update_props::framework::driver::{graft_subtree_dyn, run_script_dyn};
use xml_update_props::framework::verify::verify_dyn;
use xml_update_props::schemes::registry;
use xml_update_props::workloads::{docs, Script, ScriptKind};
use xml_update_props::xmldom::serialize_compact;

/// Every scheme stays sound (ordered, unique, correct relations) across
/// the standard workloads — except LSDX, whose documented collisions are
/// expected and asserted separately.
#[test]
fn all_schemes_sound_across_workloads() {
    let entries = registry();
    let failures: Vec<String> = par_map(&entries, |entry| {
        let mut problems = Vec::new();
        let name = entry.name();
        for (kind, seed) in [
            (ScriptKind::Random, 11),
            (ScriptKind::Uniform, 12),
            (ScriptKind::MixedDelete, 13),
            (ScriptKind::AppendOnly, 14),
        ] {
            let mut session = entry.session();
            let mut tree = docs::random_tree(77, 150);
            session.label_tree(&tree).unwrap();
            let script = Script::generate(kind, 120, tree.len(), seed);
            run_script_dyn(&mut tree, session.as_mut(), &script).unwrap();
            let v = verify_dyn(&tree, session.as_ref(), 200, seed).unwrap();
            if name == "LSDX" || name == "Com-D" {
                continue; // collisions possible; asserted below
            }
            if !v.is_sound() {
                problems.push(format!("{name} unsound after {}: {v:?}", kind.name()));
            }
        }
        problems
    })
    .into_iter()
    .flatten()
    .collect();
    assert_eq!(entries.len(), 17, "full roster exercised");
    assert!(failures.is_empty(), "{failures:?}");
}

/// LSDX's uniqueness failure is reproducible — and is the *only* kind of
/// violation it exhibits on collision-free workloads.
#[test]
fn lsdx_collisions_are_the_documented_failure() {
    use xml_update_props::framework::driver::run_script;
    use xml_update_props::framework::verify::verify;
    use xml_update_props::labelcore::LabelingScheme;
    use xml_update_props::schemes::prefix::lsdx::Lsdx;
    // append-only workloads never hit the between-collision corner
    let mut tree = docs::random_tree(5, 100);
    let mut scheme = Lsdx::new();
    let mut labeling = scheme.label_tree(&tree).unwrap();
    let script = Script::generate(ScriptKind::AppendOnly, 150, tree.len(), 3);
    run_script(&mut tree, &mut scheme, &mut labeling, &script).unwrap();
    let v = verify(&tree, &scheme, &labeling, 200, 9).unwrap();
    assert!(v.is_sound(), "append-only LSDX is collision-free: {v:?}");
}

/// The encoding layer is scheme-independent: same document, same
/// queries, same answers under every Figure 7 scheme.
#[test]
fn xpath_answers_identical_across_schemes() {
    let tree = docs::xmark_like(31, 90);
    let queries = [
        "/site/regions/*/item",
        "//item/name",
        "//person/@id",
        "//bidder/..",
        "//item[@id=\"item0_0\"]/quantity",
    ];

    let entries = document_registry_figure7();
    let results: Vec<(&'static str, Vec<Vec<String>>)> = par_map(&entries, |entry| {
        let enc = (entry.encode)(&tree).unwrap();
        let res = queries
            .iter()
            .map(|q| {
                let expr = parse_xpath(q).unwrap();
                enc.evaluate(&expr)
                    .into_iter()
                    .map(|i| enc.string_value(i))
                    .collect::<Vec<_>>()
            })
            .collect();
        (entry.name(), res)
    });
    assert_eq!(results.len(), 12);
    let (ref_name, ref_res) = &results[0];
    for (name, res) in &results[1..] {
        assert_eq!(res, ref_res, "{name} disagrees with {ref_name}");
    }
    // at least one query returned something (the test is non-vacuous)
    assert!(ref_res.iter().any(|r| !r.is_empty()));
}

/// Reconstruction round-trip through every scheme: document → encode →
/// reconstruct → serialize equals the original serialization.
#[test]
fn reconstruction_round_trip_every_scheme() {
    let tree = docs::xmark_like(8, 45);
    let original = serialize_compact(&tree);

    let entries = document_registry();
    let failures: Vec<&'static str> = par_map(&entries, |entry| {
        let enc = (entry.encode)(&tree).unwrap();
        let back = enc.reconstruct().unwrap();
        (serialize_compact(&back) != original).then(|| entry.name())
    })
    .into_iter()
    .flatten()
    .collect();
    assert_eq!(entries.len(), 17);
    assert!(failures.is_empty(), "round-trip mismatch: {failures:?}");
}

/// Deep documents exercise path-length behaviour (and the Prime scheme's
/// big-integer products) in every scheme.
#[test]
fn deep_document_all_schemes() {
    let entries = registry();
    let failures: Vec<String> = par_map(&entries, |entry| {
        let mut session = entry.session();
        let tree = docs::deep(40);
        session.label_tree(&tree).unwrap();
        if session.labeled_len() != tree.len() {
            return Some(format!("{}: label count mismatch", entry.name()));
        }
        let v = verify_dyn(&tree, session.as_ref(), 100, 1).unwrap();
        (!v.is_sound()).then(|| format!("{}: {v:?}", entry.name()))
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{failures:?}");
}

/// Wide documents exercise sibling-code allocation in every scheme.
#[test]
fn wide_document_all_schemes() {
    let entries = registry();
    let failures: Vec<String> = par_map(&entries, |entry| {
        let mut session = entry.session();
        let tree = docs::wide(500);
        session.label_tree(&tree).unwrap();
        let v = verify_dyn(&tree, session.as_ref(), 200, 2).unwrap();
        (!v.is_sound()).then(|| format!("{}: {v:?}", entry.name()))
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{failures:?}");
}

/// Subtree insertion (the paper's third structural-update class,
/// §3.1.2's "serialised as a sequence of nodes and inserted
/// individually") works for every scheme and preserves order.
#[test]
fn subtree_grafting_all_schemes() {
    use xml_update_props::xmldom::{NodeId, XmlTree};

    fn clone_into(src: &XmlTree, node: NodeId, dst: &mut XmlTree) -> NodeId {
        let copy = dst.create(src.kind(node).clone());
        for child in src.children(node) {
            let c = clone_into(src, child, dst);
            dst.append_child(copy, c).expect("fresh node is detached");
        }
        copy
    }

    let entries = registry();
    let failures: Vec<String> = par_map(&entries, |entry| {
        let name = entry.name();
        let mut session = entry.session();
        let mut tree = docs::book();
        session.label_tree(&tree).unwrap();
        let donor = docs::xmark_like(4, 12);
        let donor_root = donor.document_element().unwrap();

        // graft in three positions: append, prepend, between
        let book = tree.document_element().unwrap();
        let g1 = clone_into(&donor, donor_root, &mut tree);
        tree.append_child(book, g1).unwrap();
        graft_subtree_dyn(&tree, session.as_mut(), g1).unwrap();

        let first = tree.first_child(book).unwrap();
        let g2 = clone_into(&donor, donor_root, &mut tree);
        tree.insert_before(first, g2).unwrap();
        graft_subtree_dyn(&tree, session.as_mut(), g2).unwrap();

        let second = tree.next_sibling(g2).unwrap();
        let g3 = clone_into(&donor, donor_root, &mut tree);
        tree.insert_after(second, g3).unwrap();
        graft_subtree_dyn(&tree, session.as_mut(), g3).unwrap();

        if session.labeled_len() != tree.len() {
            return Some(format!("{name}: label count mismatch"));
        }
        let v = verify_dyn(&tree, session.as_ref(), 250, 17).unwrap();
        if name != "LSDX" && name != "Com-D" && !v.is_sound() {
            return Some(format!("{name} after grafting: {v:?}"));
        }
        None
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(failures.is_empty(), "{failures:?}");
}
