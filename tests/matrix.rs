//! Integration tests for experiment F7 (DESIGN.md): the Figure 7
//! evaluation matrix — declared transcription, measured battery, and the
//! declared-vs-measured agreement contract.
//!
//! These are the headline reproduction assertions: if a code change
//! breaks a scheme's behaviour, the measured matrix shifts and this
//! suite pins down exactly which cell moved.

use xml_update_props::framework::{
    declared_figure7, measure_figure7, measure_figure7_threads, Figure7Report,
};
use xml_update_props::labelcore::{Compliance, Property};

#[test]
fn declared_matrix_is_the_papers_figure7() {
    let m = declared_figure7();
    let letters: Vec<(String, String)> = m
        .rows
        .iter()
        .map(|r| {
            (
                r.descriptor.name.to_string(),
                r.cells.iter().map(|c| c.letter()).collect(),
            )
        })
        .collect();
    let expected = [
        ("XPath Accelerator", "NPFNNFFF"),
        ("XRel", "NPFNNFFF"),
        ("Sector", "NPNNNPFN"),
        ("QRS", "NPNNNPFF"),
        ("DeweyID", "NFFNNNFF"),
        ("Ordpath", "FFFNNNNF"),
        ("DLN", "NFFNNNFF"),
        ("LSDX", "NFFNNNFF"),
        ("ImprovedBinary", "FFFNNNNN"),
        ("QED", "FFFFFNNN"),
        ("CDQS", "FFFFFFNN"),
        ("Vector", "FPNFFFFN"),
    ];
    for ((name, letters), (ename, eletters)) in letters.iter().zip(expected) {
        assert_eq!(name, ename);
        assert_eq!(letters, eletters, "{name}");
    }
}

/// The pool is invisible in the output: the measured battery renders the
/// identical report at every worker count (`XUPD_THREADS` ∈ {1, 2, 8}).
/// One worker takes the inline sequential path, so this also pins the
/// parallel runs to the pre-pool byte stream.
#[test]
fn measured_matrix_identical_at_any_worker_count() {
    let render = |workers: usize| {
        Figure7Report::new(measure_figure7_threads(workers).unwrap()).render()
    };
    let sequential = render(1);
    for workers in [2, 8] {
        assert_eq!(
            render(workers),
            sequential,
            "matrix diverges at {workers} workers"
        );
    }
}

/// The full measured run is the expensive part; compute once, assert
/// everything on it.
#[test]
fn measured_matrix_agreement_contract() {
    let report = Figure7Report::new(measure_figure7().unwrap());

    // headline agreement bar
    let (agree, total) = report.agreement();
    assert_eq!(total, 96);
    assert!(
        agree >= 85,
        "declared-vs-measured agreement regressed: {agree}/{total}\n{:#?}",
        report.divergences()
    );

    // the Division and Recursion columns agree perfectly — they are the
    // purely algorithmic judgments our instrumentation mirrors exactly
    for (d, m) in report.results() {
        for p in [Property::NoDivision, Property::NonRecursive] {
            assert_eq!(
                d.declared_for(p),
                m.cell(p),
                "{}: {} mismatch",
                d.name,
                p.column_header()
            );
        }
    }

    // XPath Evaluations and Level Encoding also agree perfectly — for
    // every *sound* scheme. LSDX is exempt: its label collisions make
    // relation answers on collided pairs wrong, so its measured XPath
    // grade depends on which pairs the verifier samples (under the
    // hermetic testkit RNG it samples a collided pair and grades P).
    for (d, m) in report.results() {
        for p in [Property::XPathEvaluations, Property::LevelEncoding] {
            if d.name == "LSDX" && p == Property::XPathEvaluations {
                continue;
            }
            assert_eq!(
                d.declared_for(p),
                m.cell(p),
                "{}: {} mismatch",
                d.name,
                p.column_header()
            );
        }
    }

    // the expected, documented divergences — and no others outside the
    // Compact column (the judgment EXPERIMENTS.md explains cannot be
    // reconstructed from size measurements alone)
    for div in report.divergences() {
        match (div.scheme, div.property) {
            // our checkers cannot fault LSDX's persistence (its declared
            // N reflects deletion-reassignment semantics)…
            ("LSDX", Property::PersistentLabels) => {
                assert_eq!(div.measured, Compliance::Full);
            }
            // …its collided labels give wrong relation answers when the
            // verifier samples a collided pair (the flip side of the
            // soundness finding that disqualifies it)…
            ("LSDX", Property::XPathEvaluations) => {
                assert_eq!(div.measured, Compliance::Partial);
            }
            // …and the zigzag probe vindicates the paper's §4 doubt
            // about Vector's overflow claim.
            ("Vector", Property::OverflowFree) => {
                assert_eq!(div.measured, Compliance::None);
            }
            (_, Property::CompactEncoding) => {}
            (scheme, prop) => {
                panic!(
                    "unexpected divergence: {scheme} on {}",
                    prop.column_header()
                )
            }
        }
    }

    // §5.2: CDQS satisfies the greatest number of properties — true in
    // the measured matrix too, once unsound schemes are disqualified.
    let measured = report.measured();
    let unsound: Vec<&str> = report
        .soundness_findings()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    let best_sound = measured
        .ranking()
        .into_iter()
        .find(|(n, _)| !unsound.contains(n))
        .expect("a sound scheme exists");
    assert_eq!(best_sound.0, "CDQS");

    // LSDX is the only scheme with soundness findings (its documented
    // uniqueness collisions, §3.1.2)
    assert_eq!(unsound, vec!["LSDX"]);
}
