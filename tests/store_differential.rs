//! Store differential suite: the concurrent sharded replay must leave
//! the fleet in **byte-identical** state to the sequential reference
//! executor, at every worker width, for representative schemes of each
//! labelling family.
//!
//! This is the store-level analogue of the cross-scheme differential:
//! the canonical op stream fixes each document's op subsequence, lanes
//! are FIFO, placement is deterministic — so `Store::state_dump`
//! (serialized document bytes + per-document stats + cache counters)
//! must not depend on `XUPD_THREADS` at all.

use std::sync::Arc;

use xml_update_props::labelcore::LabelingScheme;
use xml_update_props::schemes::containment::accel::XPathAccelerator;
use xml_update_props::schemes::prefix::dewey::DeweyId;
use xml_update_props::schemes::prefix::qed::Qed;
use xml_update_props::schemes::vector::VectorScheme;
use xml_update_props::store::{replay_concurrent, replay_reference, Store, StoreConfig};
use xml_update_props::workloads::{docs, FleetConfig, FleetWorkload};
use xml_update_props::xmldom::XmlTree;

/// The widths the suite pins: inline, small, oversubscribed.
const WIDTHS: [usize; 3] = [1, 2, 8];

fn fleet_trees(n: usize) -> Vec<XmlTree> {
    (0..n as u64).map(|i| docs::xmark_like(i, 35)).collect()
}

/// Replay the same seeded fleet against fresh stores at every width and
/// diff the full state dump against the reference executor's.
fn assert_width_invariant<S>(scheme: S, label: &str)
where
    S: LabelingScheme + Clone + 'static,
    Store<S>: Send + Sync,
{
    let fleet = FleetWorkload::generate(FleetConfig::small(0xD1FF));
    let trees = fleet_trees(fleet.config.docs);
    let mut cfg = StoreConfig::fleet();
    cfg.shards = 6;

    let reference = Store::build(&scheme, &cfg, &trees).unwrap();
    let ref_report = replay_reference(&reference, &fleet);
    let expected = reference.state_dump();
    assert!(
        expected.lines().filter(|l| l.starts_with("doc ")).count() == fleet.config.docs,
        "{label}: dump covers the whole fleet"
    );

    for workers in WIDTHS {
        let store = Arc::new(Store::build(&scheme, &cfg, &trees).unwrap());
        let report = replay_concurrent(&store, &fleet, workers);
        let dump = store.state_dump();
        assert_eq!(
            dump, expected,
            "{label}: state diverged from reference at {workers} workers"
        );
        assert_eq!(
            report.total_ops() as usize,
            fleet.ops.len(),
            "{label}: every op executed at {workers} workers"
        );
    }
    assert_eq!(ref_report.total_ops() as usize, fleet.ops.len());
}

#[test]
fn qed_fleet_state_is_width_invariant() {
    assert_width_invariant(Qed::new(), "QED");
}

#[test]
fn dewey_fleet_state_is_width_invariant() {
    assert_width_invariant(DeweyId::new(), "DeweyID");
}

#[test]
fn accel_fleet_state_is_width_invariant() {
    assert_width_invariant(XPathAccelerator::new(), "XPathAccelerator");
}

#[test]
fn vector_fleet_state_is_width_invariant() {
    assert_width_invariant(VectorScheme::new(), "Vector");
}

/// Two identically seeded concurrent replays agree with each other,
/// not just with the reference — no hidden ambient state.
#[test]
fn repeated_concurrent_replays_are_byte_identical() {
    let fleet = FleetWorkload::generate(FleetConfig::small(7));
    let trees = fleet_trees(fleet.config.docs);
    let cfg = StoreConfig::fleet();
    let dump_at = |workers: usize| {
        let store = Arc::new(Store::build(&Qed::new(), &cfg, &trees).unwrap());
        replay_concurrent(&store, &fleet, workers);
        store.state_dump()
    };
    let first = dump_at(8);
    assert_eq!(first, dump_at(8), "same width, same bytes");
    assert_eq!(first, dump_at(2), "different width, same bytes");
}

/// The dump carries real update effects: batches landed, queries were
/// served, documents grew — the differential is not comparing empty
/// stores.
#[test]
fn fleet_replay_actually_exercises_the_store() {
    let fleet = FleetWorkload::generate(FleetConfig::small(5));
    let trees = fleet_trees(fleet.config.docs);
    let store = Store::build(&Qed::new(), &StoreConfig::fleet(), &trees).unwrap();
    replay_reference(&store, &fleet);

    let mut batches = 0u64;
    let mut queries = 0u64;
    let mut grew = 0usize;
    store.for_each_doc(|id, slot| {
        let s = slot.stats();
        batches += s.batches;
        queries += s.queries;
        assert_eq!(s.errors, 0, "doc {id}: no rejected ops in a generated fleet");
        if slot.doc().tree().len() > trees[id as usize].len() {
            grew += 1;
        }
    });
    let counts = fleet.class_counts();
    assert_eq!(batches as usize, counts["update"]);
    assert_eq!(queries as usize, counts["query"]);
    assert!(grew > 0, "insert-heavy scripts grew at least one document");
}
