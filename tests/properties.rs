//! Property-based tests (on the hermetic `xupd-testkit` harness) over
//! the whole stack: arbitrary documents and update scripts must
//! preserve the Definition 1 invariants for every scheme, and
//! parse/serialize must round-trip.

use xml_update_props::framework::driver::run_script;
use xml_update_props::framework::verify::verify;
use xml_update_props::labelcore::LabelingScheme;
use xml_update_props::workloads::{docs, Script, ScriptKind, ScriptOp};
use xml_update_props::xmldom::{parse, serialize_compact, TreeBuilder, XmlTree};
use xupd_testkit::prop::{ascii_strings, ints, map, tree_shapes, vecs, Config, Gen};
use xupd_testkit::{prop_assert, prop_assert_eq, props};

// ---------- arbitrary documents ------------------------------------

/// A tree shape encoded as a sequence of builder moves: `true` opens a
/// child, `false` closes (ignored at the root).
fn arb_tree() -> impl Gen<Value = XmlTree> {
    map(tree_shapes(1, 120), |moves| {
        let mut b = TreeBuilder::new().open("r");
        let mut depth = 1usize;
        for (i, open) in moves.into_iter().enumerate() {
            if open && depth < 12 {
                b = b.open(format!("e{i}"));
                depth += 1;
            } else if depth > 1 {
                b = b.close();
                depth -= 1;
            }
        }
        b.finish_lenient()
    })
}

/// Arbitrary update scripts as (kind, target) pairs.
fn arb_script() -> impl Gen<Value = Script> {
    map(
        vecs((ints(0u8..5), ints(0usize..64)), 1, 60),
        |raw| Script {
            kind: ScriptKind::Random,
            ops: raw
                .into_iter()
                .map(|(k, t)| match k {
                    0 => ScriptOp::InsertBefore(t),
                    1 => ScriptOp::InsertAfter(t),
                    2 => ScriptOp::PrependChild(t),
                    3 => ScriptOp::AppendChild(t),
                    _ => ScriptOp::DeleteSubtree(t),
                })
                .collect(),
        },
    )
}

// ---------- parser/serializer round-trip ----------------------------

props! {
    config = Config::with_cases(64);

    fn serialize_parse_round_trip(tree in arb_tree()) {
        let text = serialize_compact(&tree);
        let back = parse(&text).expect("serialized documents re-parse");
        prop_assert_eq!(serialize_compact(&back), text);
        prop_assert_eq!(back.len(), tree.len());
    }

    fn text_and_attr_escaping_round_trips(
        value in ascii_strings(0, 40),  // printable ASCII incl. <>&"'
        attr in ascii_strings(0, 40),
    ) {
        let tree = TreeBuilder::new()
            .open("e")
            .attr("a", attr.clone())
            .text(value.clone())
            .close()
            .finish();
        let text = serialize_compact(&tree);
        let back = parse(&text).expect("escaped output re-parses");
        let e = back.document_element().unwrap();
        prop_assert_eq!(back.attribute(e, "a").unwrap(), attr.as_str());
        prop_assert_eq!(back.text_content(e), value);
    }
}

// ---------- scheme invariants under arbitrary scripts ----------------

macro_rules! scheme_invariant_props {
    ($($test_name:ident => $make:expr),+ $(,)?) => {$(
        props! {
            config = Config::with_cases(24);

            fn $test_name(tree in arb_tree(), script in arb_script()) {
                let mut tree = tree;
                let mut scheme = $make;
                let mut labeling = scheme.label_tree(&tree).expect("initial labelling");
                run_script(&mut tree, &mut scheme, &mut labeling, &script).expect("script drives");
                tree.validate().expect("tree invariants");
                prop_assert_eq!(labeling.len(), tree.len());
                let v = verify(&tree, &scheme, &labeling, 120, 7).expect("verifiable labelling");
                prop_assert!(v.is_sound(), "{}: {:?}", scheme.name(), v);
            }
        }
    )+};
}

scheme_invariant_props! {
    accel_invariants => xml_update_props::schemes::containment::accel::XPathAccelerator::new(),
    xrel_invariants => xml_update_props::schemes::containment::xrel::XRel::new(),
    sector_invariants => xml_update_props::schemes::containment::sector::Sector::new(),
    qrs_invariants => xml_update_props::schemes::containment::qrs::Qrs::new(),
    dewey_invariants => xml_update_props::schemes::prefix::dewey::DeweyId::new(),
    ordpath_invariants => xml_update_props::schemes::prefix::ordpath::OrdPath::new(),
    dln_invariants => xml_update_props::schemes::prefix::dln::Dln::new(),
    improved_binary_invariants => xml_update_props::schemes::prefix::improved_binary::ImprovedBinary::new(),
    qed_invariants => xml_update_props::schemes::prefix::qed::Qed::new(),
    cdbs_invariants => xml_update_props::schemes::prefix::cdbs::Cdbs::new(),
    cdqs_invariants => xml_update_props::schemes::prefix::cdqs::Cdqs::new(),
    vector_invariants => xml_update_props::schemes::vector::VectorScheme::new(),
    prime_invariants => xml_update_props::schemes::prime::Prime::new(),
    dde_invariants => xml_update_props::schemes::dde::Dde::new(),
}

// ---------- persistence property for the overflow-free family --------

macro_rules! persistent_props {
    ($($test_name:ident => $make:expr),+ $(,)?) => {$(
        props! {
            config = Config::with_cases(24);

            fn $test_name(tree in arb_tree(), script in arb_script()) {
                let mut tree = tree;
                let mut scheme = $make;
                let mut labeling = scheme.label_tree(&tree).expect("initial labelling");
                let stats = run_script(&mut tree, &mut scheme, &mut labeling, &script)
                    .expect("script drives");
                prop_assert_eq!(stats.relabeled, 0, "{} must never relabel", scheme.name());
                prop_assert_eq!(stats.overflow_events, 0);
            }
        }
    )+};
}

persistent_props! {
    qed_never_relabels => xml_update_props::schemes::prefix::qed::Qed::new(),
    cdqs_never_relabels => xml_update_props::schemes::prefix::cdqs::Cdqs::new(),
    prime_never_relabels => xml_update_props::schemes::prime::Prime::new(),
}

// ---------- LSDX: collisions may happen, but order-of-live-uniques ----

props! {
    config = Config::with_cases(24);

    /// Even when LSDX collides, it must never do so on append-only
    /// scripts (its safe region).
    fn lsdx_append_only_is_collision_free(tree in arb_tree(), n in ints(1usize..50)) {
        let mut tree = tree;
        let mut scheme = xml_update_props::schemes::prefix::lsdx::Lsdx::new();
        let mut labeling = scheme.label_tree(&tree).expect("initial labelling");
        let script = Script {
            kind: ScriptKind::AppendOnly,
            ops: (0..n).map(ScriptOp::AppendChild).collect(),
        };
        run_script(&mut tree, &mut scheme, &mut labeling, &script).expect("script drives");
        prop_assert!(labeling.find_duplicate().is_none());
    }
}

// ---------- deletion keeps labelling in sync --------------------------

props! {
    config = Config::with_cases(32);

    fn deletion_sync(tree in arb_tree(), seeds in vecs(ints(0usize..64), 1, 19)) {
        let mut tree = tree;
        let mut scheme = xml_update_props::schemes::prefix::qed::Qed::new();
        let mut labeling = scheme.label_tree(&tree).expect("initial labelling");
        let script = Script {
            kind: ScriptKind::MixedDelete,
            ops: seeds.into_iter().map(ScriptOp::DeleteSubtree).collect(),
        };
        run_script(&mut tree, &mut scheme, &mut labeling, &script).expect("script drives");
        // every live node labelled, no label for dead nodes
        prop_assert_eq!(labeling.len(), tree.len());
        for (id, _) in labeling.iter() {
            prop_assert!(tree.is_alive(id));
        }
    }
}

// ---------- the sample document is untouched by any of this ----------

#[test]
fn sample_doc_assumptions() {
    let tree = docs::book();
    assert_eq!(tree.len(), 16); // 1 root + 8 elements + 2 attrs + 5 text
}
