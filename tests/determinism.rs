//! Determinism regression: the hermetic RNG must generate byte-identical
//! workloads from the same seed, run to run and refactor to refactor.
//! EXPERIMENTS.md's "exactly reproducible" contract rests on this — any
//! accidental reordering of RNG draws in a future refactor trips these
//! assertions immediately.

use xml_update_props::workloads::{docs, Script, ScriptKind, ScriptOp};
use xml_update_props::xmldom::{serialize_compact, XmlTree};

/// The three workload flavours the P1/P3 batteries lean on.
const FLAVOURS: [ScriptKind; 3] = [ScriptKind::Random, ScriptKind::Uniform, ScriptKind::Skewed];

/// Render an op sequence to bytes, so "byte-identical" is literal.
fn op_bytes(ops: &[ScriptOp]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        let (tag, idx) = match *op {
            ScriptOp::InsertBefore(i) => (0u8, i),
            ScriptOp::InsertAfter(i) => (1, i),
            ScriptOp::PrependChild(i) => (2, i),
            ScriptOp::AppendChild(i) => (3, i),
            ScriptOp::DeleteSubtree(i) => (4, i),
        };
        out.push(tag);
        out.extend_from_slice(&idx.to_le_bytes());
    }
    out
}

#[test]
fn same_seed_yields_byte_identical_scripts_for_all_flavours() {
    for kind in FLAVOURS {
        for seed in [0u64, 1, 42, 0xBEEF, u64::MAX] {
            let a = Script::generate(kind, 250, 120, seed);
            let b = Script::generate(kind, 250, 120, seed);
            assert_eq!(
                op_bytes(&a.ops),
                op_bytes(&b.ops),
                "{} @ seed {seed}",
                kind.name()
            );
        }
    }
}

#[test]
fn different_seeds_differ_where_randomness_is_used() {
    // Random draws per-op, so distinct seeds must give distinct streams;
    // uniform/skewed are positionally deterministic by design and need
    // not differ.
    let a = Script::generate(ScriptKind::Random, 250, 120, 1);
    let b = Script::generate(ScriptKind::Random, 250, 120, 2);
    assert_ne!(op_bytes(&a.ops), op_bytes(&b.ops));
}

#[test]
fn generated_documents_are_byte_identical_per_seed() {
    let sig = |t: &XmlTree| serialize_compact(t).into_bytes();
    for seed in [7u64, 0x9e0, 0xD0C] {
        assert_eq!(
            sig(&docs::random_tree(seed, 400)),
            sig(&docs::random_tree(seed, 400)),
            "random_tree @ {seed}"
        );
        assert_eq!(
            sig(&docs::xmark_like(seed, 90)),
            sig(&docs::xmark_like(seed, 90)),
            "xmark_like @ {seed}"
        );
    }
    assert_ne!(
        sig(&docs::random_tree(1, 400)),
        sig(&docs::random_tree(2, 400))
    );
}

/// Pin the exact byte stream of one script per flavour (first 12 ops),
/// so a future RNG or generator reordering cannot slip through as
/// "still deterministic, just different". These constants were produced
/// by the current xupd-testkit xoshiro256++ stream at seed 42.
#[test]
fn golden_script_prefixes_are_pinned() {
    let golden: [(ScriptKind, &[ScriptOp]); 3] = [
        (
            ScriptKind::Random,
            &[
                ScriptOp::AppendChild(25),
                ScriptOp::InsertAfter(30),
                ScriptOp::AppendChild(39),
                ScriptOp::PrependChild(6),
                ScriptOp::PrependChild(34),
                ScriptOp::InsertBefore(17),
                ScriptOp::PrependChild(43),
                ScriptOp::InsertAfter(34),
                ScriptOp::InsertAfter(33),
                ScriptOp::PrependChild(36),
                ScriptOp::InsertBefore(39),
                ScriptOp::InsertBefore(24),
            ],
        ),
        (
            ScriptKind::Uniform,
            &[
                ScriptOp::AppendChild(0),
                ScriptOp::AppendChild(7),
                ScriptOp::AppendChild(14),
                ScriptOp::AppendChild(21),
                ScriptOp::AppendChild(28),
                ScriptOp::AppendChild(35),
                ScriptOp::AppendChild(42),
                ScriptOp::AppendChild(49),
                ScriptOp::AppendChild(6),
                ScriptOp::AppendChild(13),
                ScriptOp::AppendChild(20),
                ScriptOp::AppendChild(27),
            ],
        ),
        (
            ScriptKind::Skewed,
            &[ScriptOp::InsertBefore(25); 12],
        ),
    ];
    for (kind, expect) in golden {
        let s = Script::generate(kind, 12, 50, 42);
        assert_eq!(&s.ops[..12.min(s.ops.len())], expect, "{}", kind.name());
    }
}
